#include "linking/link_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"

namespace alex::linking {
namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << content;
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::string WriteLinksTsv(const std::vector<Link>& links) {
  std::string out;
  char score[32];
  for (const Link& link : links) {
    std::snprintf(score, sizeof(score), "%.6g", link.score);
    out += link.left;
    out += '\t';
    out += link.right;
    out += '\t';
    out += score;
    out += '\n';
  }
  return out;
}

Result<std::vector<Link>> ParseLinksTsv(std::string_view text) {
  std::vector<Link> links;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    ++line_no;
    std::string_view stripped = StripAsciiWhitespace(line);
    if (!stripped.empty() && stripped[0] != '#') {
      std::vector<std::string> fields = Split(std::string(stripped), '\t');
      if (fields.size() < 2 || fields[0].empty() || fields[1].empty()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": expected left<TAB>right[<TAB>score]");
      }
      Link link;
      link.left = fields[0];
      link.right = fields[1];
      if (fields.size() >= 3) {
        double score = 1.0;
        if (!ParseDouble(fields[2], &score)) {
          return Status::ParseError("line " + std::to_string(line_no) +
                                    ": bad score '" + fields[2] + "'");
        }
        link.score = score;
      }
      links.push_back(std::move(link));
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return links;
}

Status SaveLinksTsv(const std::vector<Link>& links,
                    const std::string& path) {
  return WriteFile(path, WriteLinksTsv(links));
}

Result<std::vector<Link>> LoadLinksTsv(const std::string& path) {
  Result<std::string> content = ReadFile(path);
  if (!content.ok()) return content.status();
  return ParseLinksTsv(content.value());
}

std::string WriteLinksNTriples(const std::vector<Link>& links) {
  std::string out;
  for (const Link& link : links) {
    out += "<" + link.left + "> <" + std::string(kOwlSameAs) + "> <" +
           link.right + "> .\n";
  }
  return out;
}

Result<std::vector<Link>> ParseLinksNTriples(std::string_view text) {
  rdf::TripleStore store("links");
  Status st = rdf::ParseNTriples(text, &store);
  if (!st.ok()) return st;
  std::vector<Link> links;
  auto same_as = store.dictionary().Lookup(rdf::Term::Iri(kOwlSameAs));
  if (!same_as) return links;
  for (const rdf::Triple& t :
       store.Match(std::nullopt, *same_as, std::nullopt)) {
    const rdf::Term& subject = store.dictionary().term(t.subject);
    const rdf::Term& object = store.dictionary().term(t.object);
    if (!subject.is_iri() || !object.is_iri()) continue;
    links.push_back(Link{subject.lexical(), object.lexical(), 1.0});
  }
  return links;
}

Status SaveLinksNTriples(const std::vector<Link>& links,
                         const std::string& path) {
  return WriteFile(path, WriteLinksNTriples(links));
}

Result<std::vector<Link>> LoadLinksNTriples(const std::string& path) {
  Result<std::string> content = ReadFile(path);
  if (!content.ok()) return content.status();
  return ParseLinksNTriples(content.value());
}

}  // namespace alex::linking
