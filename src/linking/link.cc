// Link is header-only; this file exists so the linking target always has at
// least one translation unit and is the natural home for future non-inline
// helpers.
#include "linking/link.h"
