// N-Triples reader and writer.
//
// Supports the line-based N-Triples syntax with IRIs, blank nodes, plain and
// typed literals (xsd:integer, xsd:double, xsd:date, xsd:boolean map onto the
// Term literal types; anything else is kept as a string literal), and the
// \t \n \r \" \\ escapes.
#ifndef ALEX_RDF_NTRIPLES_H_
#define ALEX_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace alex::rdf {

// Parses one N-Triples document (possibly many lines) into `store`.
// Blank lines and '#' comment lines are skipped. Stops at the first
// malformed line and reports its number.
Status ParseNTriples(std::string_view text, TripleStore* store);

// Reads an N-Triples file from disk into `store`.
Status LoadNTriplesFile(const std::string& path, TripleStore* store);

// Serializes the whole store as N-Triples.
std::string WriteNTriples(const TripleStore& store);

// Serializes one term in N-Triples syntax (escaping literals).
std::string TermToNTriples(const Term& term);

}  // namespace alex::rdf

#endif  // ALEX_RDF_NTRIPLES_H_
