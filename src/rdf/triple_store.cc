#include "rdf/triple_store.h"

#include <algorithm>

namespace alex::rdf {
namespace {

struct SpoLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.subject != b.subject) return a.subject < b.subject;
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    return a.object < b.object;
  }
};

struct PosLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    if (a.object != b.object) return a.object < b.object;
    return a.subject < b.subject;
  }
};

struct OspLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.object != b.object) return a.object < b.object;
    if (a.subject != b.subject) return a.subject < b.subject;
    return a.predicate < b.predicate;
  }
};

// Returns the [first, last) range of `index` matching the bound prefix
// under comparator Less, scanning for any residual bound positions.
template <typename Less>
void CollectRange(const std::vector<Triple>& index, const Triple& lo,
                  const Triple& hi, TermPattern s, TermPattern p,
                  TermPattern o, std::vector<Triple>* out) {
  auto first = std::lower_bound(index.begin(), index.end(), lo, Less());
  auto last = std::upper_bound(index.begin(), index.end(), hi, Less());
  for (auto it = first; it != last; ++it) {
    if (s && it->subject != *s) continue;
    if (p && it->predicate != *p) continue;
    if (o && it->object != *o) continue;
    out->push_back(*it);
  }
}

}  // namespace

void TripleStore::Add(TermId s, TermId p, TermId o) {
  spo_.push_back(Triple{s, p, o});
  dirty_ = true;
}

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  Add(dictionary_.Intern(s), dictionary_.Intern(p), dictionary_.Intern(o));
}

size_t TripleStore::size() const {
  EnsureIndexes();
  return spo_.size();
}

void TripleStore::EnsureIndexes() const {
  if (!dirty_) return;
  std::sort(spo_.begin(), spo_.end(), SpoLess());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess());
  dirty_ = false;
}

std::vector<Triple> TripleStore::Match(TermPattern s, TermPattern p,
                                       TermPattern o) const {
  EnsureIndexes();
  std::vector<Triple> out;
  const TermId kMin = 0;
  const TermId kMax = kInvalidTermId;
  if (s) {
    // SPO index: prefix (s) or (s,p).
    Triple lo{*s, p.value_or(kMin), (p && o) ? *o : kMin};
    Triple hi{*s, p.value_or(kMax), (p && o) ? *o : kMax};
    CollectRange<SpoLess>(spo_, lo, hi, s, p, o, &out);
  } else if (p) {
    // POS index: prefix (p) or (p,o).
    Triple lo{kMin, *p, o.value_or(kMin)};
    Triple hi{kMax, *p, o.value_or(kMax)};
    CollectRange<PosLess>(pos_, lo, hi, s, p, o, &out);
  } else if (o) {
    // OSP index: prefix (o).
    Triple lo{kMin, kMin, *o};
    Triple hi{kMax, kMax, *o};
    CollectRange<OspLess>(osp_, lo, hi, s, p, o, &out);
  } else {
    out = spo_;
  }
  return out;
}

bool TripleStore::Contains(TermId s, TermId p, TermId o) const {
  EnsureIndexes();
  Triple probe{s, p, o};
  return std::binary_search(spo_.begin(), spo_.end(), probe, SpoLess());
}

std::vector<TermId> TripleStore::Subjects() const {
  EnsureIndexes();
  std::vector<TermId> out;
  TermId last = kInvalidTermId;
  for (const Triple& t : spo_) {
    if (t.subject != last) {
      out.push_back(t.subject);
      last = t.subject;
    }
  }
  return out;
}

std::vector<TermId> TripleStore::Predicates() const {
  EnsureIndexes();
  std::vector<TermId> out;
  TermId last = kInvalidTermId;
  for (const Triple& t : pos_) {
    if (t.predicate != last) {
      out.push_back(t.predicate);
      last = t.predicate;
    }
  }
  return out;
}

std::vector<TermId> TripleStore::Objects(TermId s, TermId p) const {
  std::vector<TermId> out;
  for (const Triple& t : Match(s, p, std::nullopt)) out.push_back(t.object);
  return out;
}

}  // namespace alex::rdf
