#include "rdf/triple_store.h"

#include <algorithm>

namespace alex::rdf {
namespace {

struct SpoLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.subject != b.subject) return a.subject < b.subject;
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    return a.object < b.object;
  }
};

struct PosLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    if (a.object != b.object) return a.object < b.object;
    return a.subject < b.subject;
  }
};

struct OspLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.object != b.object) return a.object < b.object;
    if (a.subject != b.subject) return a.subject < b.subject;
    return a.predicate < b.predicate;
  }
};

// The [first, last) range of `index` whose triples sort between `lo` and
// `hi` under Less. With the index chosen so that every bound position is
// part of the prefix, the range contains exactly the matches.
template <typename Less>
std::pair<const Triple*, const Triple*> IndexRange(
    const std::vector<Triple>& index, const Triple& lo, const Triple& hi) {
  auto first = std::lower_bound(index.begin(), index.end(), lo, Less());
  auto last = std::upper_bound(index.begin(), index.end(), hi, Less());
  return {index.data() + (first - index.begin()),
          index.data() + (last - index.begin())};
}

}  // namespace

void TripleStore::Add(TermId s, TermId p, TermId o) {
  spo_.push_back(Triple{s, p, o});
  dirty_ = true;
  ++generation_;
}

IngestResult TripleStore::Ingest(const IngestBatch& batch) {
  EnsureIndexes();  // start from the sorted, deduplicated canonical list
  IngestResult result;

  if (!batch.retracts.empty()) {
    std::vector<Triple> retracts = batch.retracts;
    std::sort(retracts.begin(), retracts.end(), SpoLess());
    retracts.erase(std::unique(retracts.begin(), retracts.end()),
                   retracts.end());
    auto keep = std::remove_if(spo_.begin(), spo_.end(), [&](const Triple& t) {
      return std::binary_search(retracts.begin(), retracts.end(), t,
                                SpoLess());
    });
    result.retracted = static_cast<size_t>(spo_.end() - keep);
    spo_.erase(keep, spo_.end());
  }

  for (const Triple& t : batch.adds) {
    // spo_ stays sorted through the retract pass, so presence checks are
    // exact until the first append; after that, check the appended tail too.
    auto sorted_end = spo_.begin() + (spo_.size() - result.added);
    bool present =
        std::binary_search(spo_.begin(), sorted_end, t, SpoLess()) ||
        std::find(sorted_end, spo_.end(), t) != spo_.end();
    if (present) continue;
    spo_.push_back(t);
    ++result.added;
  }

  dirty_ = true;
  ++generation_;
  result.epoch = ++ingest_epoch_;
  EnsureIndexes();  // leave the store immediately readable
  return result;
}

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  Add(dictionary_.Intern(s), dictionary_.Intern(p), dictionary_.Intern(o));
}

size_t TripleStore::size() const {
  EnsureIndexes();
  return spo_.size();
}

void TripleStore::EnsureIndexes() const {
  if (!dirty_) return;
  std::sort(spo_.begin(), spo_.end(), SpoLess());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess());
  dirty_ = false;
}

MatchCursor TripleStore::Scan(TermPattern s, TermPattern p,
                              TermPattern o) const {
  EnsureIndexes();
  const TermId kMin = 0;
  const TermId kMax = kInvalidTermId;
  std::pair<const Triple*, const Triple*> range;
  if (s && o && !p) {
    // OSP index, prefix (o, s): the only two-bound combination that is not
    // a prefix of SPO or POS. Within the range only p varies, so the output
    // order (p ascending) coincides with the SPO order for a fixed subject.
    range = IndexRange<OspLess>(osp_, Triple{*s, kMin, *o},
                                Triple{*s, kMax, *o});
  } else if (s) {
    // SPO index: prefix (s), (s,p) or (s,p,o).
    range = IndexRange<SpoLess>(
        spo_, Triple{*s, p.value_or(kMin), o.value_or(kMin)},
        Triple{*s, p.value_or(kMax), o.value_or(kMax)});
  } else if (p) {
    // POS index: prefix (p) or (p,o).
    range = IndexRange<PosLess>(pos_, Triple{kMin, *p, o.value_or(kMin)},
                                Triple{kMax, *p, o.value_or(kMax)});
  } else if (o) {
    // OSP index: prefix (o).
    range = IndexRange<OspLess>(osp_, Triple{kMin, kMin, *o},
                                Triple{kMax, kMax, *o});
  } else {
    range = {spo_.data(), spo_.data() + spo_.size()};
  }
  return MatchCursor(this, generation_, range.first, range.second);
}

const char* IndexOrderName(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo: return "SPO";
    case IndexOrder::kPos: return "POS";
    default: return "OSP";
  }
}

MatchCursor TripleStore::ScanOrdered(IndexOrder order, TermPattern s,
                                     TermPattern p, TermPattern o) const {
  EnsureIndexes();
  const TermPattern bound[3] = {s, p, o};
  const int* positions = IndexPositions(order);
  // The bound positions must be a prefix of the index's position sequence.
  bool in_prefix = true;
  for (int k = 0; k < 3; ++k) {
    bool is_bound = bound[positions[k]].has_value();
    if (is_bound && !in_prefix)
      return MatchCursor(this, generation_, nullptr, nullptr);
    if (!is_bound) in_prefix = false;
  }
  const TermId kMin = 0;
  const TermId kMax = kInvalidTermId;
  Triple lo{s.value_or(kMin), p.value_or(kMin), o.value_or(kMin)};
  Triple hi{s.value_or(kMax), p.value_or(kMax), o.value_or(kMax)};
  std::pair<const Triple*, const Triple*> range;
  switch (order) {
    case IndexOrder::kSpo: range = IndexRange<SpoLess>(spo_, lo, hi); break;
    case IndexOrder::kPos: range = IndexRange<PosLess>(pos_, lo, hi); break;
    default: range = IndexRange<OspLess>(osp_, lo, hi); break;
  }
  return MatchCursor(this, generation_, range.first, range.second);
}

size_t TripleStore::CountMatches(TermPattern s, TermPattern p,
                                 TermPattern o) const {
  return Scan(s, p, o).remaining();
}

std::vector<Triple> TripleStore::Match(TermPattern s, TermPattern p,
                                       TermPattern o) const {
  MatchCursor cursor = Scan(s, p, o);
  std::vector<Triple> out;
  out.reserve(cursor.remaining());
  while (const Triple* t = cursor.Next()) out.push_back(*t);
  return out;
}

bool TripleStore::Contains(TermId s, TermId p, TermId o) const {
  EnsureIndexes();
  Triple probe{s, p, o};
  return std::binary_search(spo_.begin(), spo_.end(), probe, SpoLess());
}

std::vector<TermId> TripleStore::Subjects() const {
  EnsureIndexes();
  std::vector<TermId> out;
  TermId last = kInvalidTermId;
  for (const Triple& t : spo_) {
    if (t.subject != last) {
      out.push_back(t.subject);
      last = t.subject;
    }
  }
  return out;
}

std::vector<TermId> TripleStore::Predicates() const {
  EnsureIndexes();
  std::vector<TermId> out;
  TermId last = kInvalidTermId;
  for (const Triple& t : pos_) {
    if (t.predicate != last) {
      out.push_back(t.predicate);
      last = t.predicate;
    }
  }
  return out;
}

std::vector<TermId> TripleStore::Objects(TermId s, TermId p) const {
  std::vector<TermId> out;
  for (const Triple& t : Match(s, p, std::nullopt)) out.push_back(t.object);
  return out;
}

}  // namespace alex::rdf
