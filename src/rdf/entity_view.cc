#include "rdf/entity_view.h"

namespace alex::rdf {

Entity GetEntity(const TripleStore& store, TermId subject) {
  Entity entity;
  entity.subject = subject;
  for (const Triple& t : store.Match(subject, std::nullopt, std::nullopt)) {
    entity.attributes.push_back(Attribute{t.predicate, t.object});
  }
  return entity;
}

std::vector<Entity> AllEntities(const TripleStore& store) {
  std::vector<Entity> entities;
  std::vector<Triple> all = store.Match(std::nullopt, std::nullopt,
                                        std::nullopt);
  // `all` is in SPO order: group consecutive runs by subject.
  for (size_t i = 0; i < all.size();) {
    Entity entity;
    entity.subject = all[i].subject;
    while (i < all.size() && all[i].subject == entity.subject) {
      entity.attributes.push_back(
          Attribute{all[i].predicate, all[i].object});
      ++i;
    }
    entities.push_back(std::move(entity));
  }
  return entities;
}

}  // namespace alex::rdf
