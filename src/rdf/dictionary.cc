#include "rdf/dictionary.h"

#include "common/logging.h"

namespace alex::rdf {

TermId Dictionary::Intern(const Term& term) {
  std::string key = term.EncodingKey();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  ALEX_CHECK(terms_.size() < kInvalidTermId) << "dictionary overflow";
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<TermId> Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term.EncodingKey());
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace alex::rdf
