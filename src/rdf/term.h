// RDF term model.
//
// A Term is an IRI, a blank node, or a typed literal. Literals carry a
// lexical form plus a coarse value type (string / integer / double / date /
// boolean) that the similarity library uses to dispatch to a type-appropriate
// similarity function (paper §4.1: "ALEX uses a generic similarity function
// that depends on the type of the attributes to be compared").
#ifndef ALEX_RDF_TERM_H_
#define ALEX_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace alex::rdf {

enum class TermKind : uint8_t { kIri = 0, kBlank = 1, kLiteral = 2 };

enum class LiteralType : uint8_t {
  kString = 0,
  kInteger = 1,
  kDouble = 2,
  kDate = 3,
  kBoolean = 4,
};

// Returns a printable name ("iri", "literal", ...).
const char* TermKindName(TermKind kind);
const char* LiteralTypeName(LiteralType type);

// Value-semantic RDF term.
class Term {
 public:
  Term() = default;

  static Term Iri(std::string iri);
  static Term Blank(std::string label);
  static Term StringLiteral(std::string value);
  static Term IntegerLiteral(int64_t value);
  static Term DoubleLiteral(double value);
  static Term BooleanLiteral(bool value);
  // `iso_date` must look like YYYY-MM-DD; no validation of day ranges.
  static Term DateLiteral(std::string iso_date);

  TermKind kind() const { return kind_; }
  bool is_iri() const { return kind_ == TermKind::kIri; }
  bool is_blank() const { return kind_ == TermKind::kBlank; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }

  // For IRIs the IRI string, for blank nodes the label, for literals the
  // lexical form.
  const std::string& lexical() const { return lexical_; }

  // Only meaningful for literals.
  LiteralType literal_type() const { return literal_type_; }

  // Parses the lexical form as the typed value. Only valid for literals of
  // the matching type.
  int64_t AsInteger() const;
  double AsDouble() const;
  bool AsBoolean() const;
  // Days since 1970-01-01 (proleptic Gregorian, civil calendar).
  int64_t AsDateDays() const;

  // N-Triples-ish rendering: <iri>, _:b, "literal"^^<type>.
  std::string ToString() const;

  // A stable encoding usable as a hash/map key; distinct terms have distinct
  // keys.
  std::string EncodingKey() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.literal_type_ == b.literal_type_ &&
           a.lexical_ == b.lexical_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    if (a.literal_type_ != b.literal_type_)
      return a.literal_type_ < b.literal_type_;
    return a.lexical_ < b.lexical_;
  }

 private:
  TermKind kind_ = TermKind::kIri;
  LiteralType literal_type_ = LiteralType::kString;
  std::string lexical_;
};

// Converts a civil date to days since the Unix epoch.
int64_t CivilDateToDays(int year, int month, int day);

// Parses "YYYY-MM-DD". Returns false on malformed input.
bool ParseIsoDate(std::string_view s, int* year, int* month, int* day);

}  // namespace alex::rdf

#endif  // ALEX_RDF_TERM_H_
