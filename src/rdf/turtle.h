// Turtle (Terse RDF Triple Language) reader — the serialization most LOD
// data sets actually ship in.
//
// Supported subset:
//   * `@prefix p: <iri> .` and SPARQL-style `PREFIX p: <iri>` directives
//   * `@base <iri> .` / `BASE <iri>` (resolved by plain concatenation for
//     relative IRIs)
//   * IRIs `<...>`, prefixed names `p:local`, blank nodes `_:label`
//   * the `a` shorthand for rdf:type
//   * literals: quoted strings with \t \n \r \" \\ escapes, language tags,
//     `^^` datatypes (xsd numeric/date/boolean types map onto the Term
//     literal types), bare integers / decimals / `true` / `false`
//   * predicate lists with `;` and object lists with `,`
//
// Not supported (reported as parse errors): collections `( ... )`,
// anonymous blank nodes `[ ... ]`, multi-line `"""..."""` strings.
#ifndef ALEX_RDF_TURTLE_H_
#define ALEX_RDF_TURTLE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace alex::rdf {

// Parses a Turtle document into `store`. Errors carry 1-based line numbers.
Status ParseTurtle(std::string_view text, TripleStore* store);

// Reads a Turtle file from disk into `store`.
Status LoadTurtleFile(const std::string& path, TripleStore* store);

// Loads `path` by extension: .ttl/.turtle -> Turtle, anything else ->
// N-Triples.
Status LoadRdfFile(const std::string& path, TripleStore* store);

}  // namespace alex::rdf

#endif  // ALEX_RDF_TURTLE_H_
