// Term dictionary: interns RDF terms to dense 32-bit ids.
//
// Every TripleStore owns a Dictionary; triples are stored as id triples and
// all indexes operate on ids. Ids are dense, starting at 0, so they can be
// used directly as vector indexes.
#ifndef ALEX_RDF_DICTIONARY_H_
#define ALEX_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace alex::rdf {

using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0xffffffffu;

class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable (can hold millions of strings).
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  // Returns the id for `term`, interning it if new.
  TermId Intern(const Term& term);

  // Returns the id of `term` if present.
  std::optional<TermId> Lookup(const Term& term) const;

  // Returns the term for `id`. `id` must be valid.
  const Term& term(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

 private:
  std::vector<Term> terms_;
  std::unordered_map<std::string, TermId> index_;  // EncodingKey -> id
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_DICTIONARY_H_
