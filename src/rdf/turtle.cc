#include "rdf/turtle.h"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.h"
#include "rdf/ntriples.h"

namespace alex::rdf {
namespace {

constexpr std::string_view kXsd = "http://www.w3.org/2001/XMLSchema#";
constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

class TurtleParser {
 public:
  TurtleParser(std::string_view text, TripleStore* store)
      : text_(text), store_(store) {}

  Status Run() {
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) return Status::Ok();
      ALEX_RETURN_IF_ERROR(ParseStatement());
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Status Error(const std::string& message) const {
    return Status::ParseError("line " + std::to_string(line_) + ": " +
                              message);
  }

  bool ConsumeKeyword(std::string_view keyword) {
    // Case-insensitive match followed by a non-name character.
    if (pos_ + keyword.size() > text_.size()) return false;
    for (size_t i = 0; i < keyword.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(keyword[i]))) {
        return false;
      }
    }
    char next = PeekAt(keyword.size());
    if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') {
      return false;
    }
    for (size_t i = 0; i < keyword.size(); ++i) Advance();
    return true;
  }

  bool ConsumeChar(char c) {
    SkipWhitespaceAndComments();
    if (AtEnd() || Peek() != c) return false;
    Advance();
    return true;
  }

  Status ParseStatement() {
    if (Peek() == '@') {
      Advance();
      if (ConsumeKeyword("prefix")) {
        ALEX_RETURN_IF_ERROR(ParsePrefixDirective());
        if (!ConsumeChar('.')) return Error("expected '.' after @prefix");
        return Status::Ok();
      }
      if (ConsumeKeyword("base")) {
        ALEX_RETURN_IF_ERROR(ParseBaseDirective());
        if (!ConsumeChar('.')) return Error("expected '.' after @base");
        return Status::Ok();
      }
      return Error("unknown @directive");
    }
    // SPARQL-style directives (no trailing dot).
    size_t saved = pos_;
    size_t saved_line = line_;
    if (ConsumeKeyword("prefix")) {
      Status st = ParsePrefixDirective();
      if (st.ok()) return st;
      pos_ = saved;
      line_ = saved_line;
    } else if (ConsumeKeyword("base")) {
      Status st = ParseBaseDirective();
      if (st.ok()) return st;
      pos_ = saved;
      line_ = saved_line;
    }
    return ParseTriples();
  }

  Status ParsePrefixDirective() {
    SkipWhitespaceAndComments();
    std::string name;
    while (!AtEnd() && Peek() != ':' &&
           !std::isspace(static_cast<unsigned char>(Peek()))) {
      name.push_back(Peek());
      Advance();
    }
    if (AtEnd() || Peek() != ':') return Error("expected ':' in prefix");
    Advance();
    SkipWhitespaceAndComments();
    Result<std::string> iri = ParseIriRef();
    if (!iri.ok()) return iri.status();
    prefixes_[name] = iri.value();
    return Status::Ok();
  }

  Status ParseBaseDirective() {
    SkipWhitespaceAndComments();
    Result<std::string> iri = ParseIriRef();
    if (!iri.ok()) return iri.status();
    base_ = iri.value();
    return Status::Ok();
  }

  // `<...>` with relative resolution against @base.
  Result<std::string> ParseIriRef() {
    if (AtEnd() || Peek() != '<') return Error("expected '<'");
    Advance();
    std::string iri;
    while (!AtEnd() && Peek() != '>') {
      if (Peek() == '\n') return Error("newline inside IRI");
      iri.push_back(Peek());
      Advance();
    }
    if (AtEnd()) return Error("unterminated IRI");
    Advance();
    if (iri.find("://") == std::string::npos && !base_.empty()) {
      iri = base_ + iri;
    }
    return iri;
  }

  Result<Term> ParseSubject() {
    SkipWhitespaceAndComments();
    if (AtEnd()) return Error("expected subject");
    char c = Peek();
    if (c == '<') {
      Result<std::string> iri = ParseIriRef();
      if (!iri.ok()) return iri.status();
      return Term::Iri(std::move(iri).value());
    }
    if (c == '_' && PeekAt(1) == ':') return ParseBlank();
    if (c == '[') return Error("anonymous blank nodes are not supported");
    if (c == '(') return Error("collections are not supported");
    return ParsePrefixedName();
  }

  Result<Term> ParseBlank() {
    Advance();  // _
    Advance();  // :
    std::string label;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-')) {
      label.push_back(Peek());
      Advance();
    }
    if (label.empty()) return Error("empty blank node label");
    return Term::Blank(std::move(label));
  }

  Result<Term> ParsePrefixedName() {
    std::string prefix;
    while (!AtEnd() && Peek() != ':' &&
           (std::isalnum(static_cast<unsigned char>(Peek())) ||
            Peek() == '_' || Peek() == '-' || Peek() == '.')) {
      prefix.push_back(Peek());
      Advance();
    }
    if (AtEnd() || Peek() != ':') {
      return Error("expected prefixed name (got '" + prefix + "')");
    }
    Advance();
    std::string local;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-' || Peek() == '.')) {
      local.push_back(Peek());
      Advance();
    }
    // A trailing '.' is the statement terminator, not part of the name.
    while (!local.empty() && local.back() == '.') {
      local.pop_back();
      --pos_;
    }
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Error("unknown prefix '" + prefix + ":'");
    }
    return Term::Iri(it->second + local);
  }

  Result<Term> ParsePredicate() {
    SkipWhitespaceAndComments();
    if (AtEnd()) return Error("expected predicate");
    if (Peek() == '<') {
      Result<std::string> iri = ParseIriRef();
      if (!iri.ok()) return iri.status();
      return Term::Iri(std::move(iri).value());
    }
    if (Peek() == 'a') {
      char next = PeekAt(1);
      if (std::isspace(static_cast<unsigned char>(next))) {
        Advance();
        return Term::Iri(std::string(kRdfType));
      }
    }
    return ParsePrefixedName();
  }

  Result<Term> ParseObject() {
    SkipWhitespaceAndComments();
    if (AtEnd()) return Error("expected object");
    char c = Peek();
    if (c == '<') {
      Result<std::string> iri = ParseIriRef();
      if (!iri.ok()) return iri.status();
      return Term::Iri(std::move(iri).value());
    }
    if (c == '_' && PeekAt(1) == ':') return ParseBlank();
    if (c == '"') return ParseQuotedLiteral();
    if (c == '[') return Error("anonymous blank nodes are not supported");
    if (c == '(') return Error("collections are not supported");
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+') {
      return ParseNumber();
    }
    if (ConsumeKeyword("true")) return Term::BooleanLiteral(true);
    if (ConsumeKeyword("false")) return Term::BooleanLiteral(false);
    return ParsePrefixedName();
  }

  Result<Term> ParseQuotedLiteral() {
    if (PeekAt(1) == '"' && PeekAt(2) == '"') {
      return Error("triple-quoted strings are not supported");
    }
    Advance();  // opening quote
    std::string value;
    while (!AtEnd() && Peek() != '"') {
      char c = Peek();
      if (c == '\\') {
        Advance();
        if (AtEnd()) return Error("dangling escape");
        switch (Peek()) {
          case 't':
            value.push_back('\t');
            break;
          case 'n':
            value.push_back('\n');
            break;
          case 'r':
            value.push_back('\r');
            break;
          case '"':
            value.push_back('"');
            break;
          case '\\':
            value.push_back('\\');
            break;
          default:
            return Error("unsupported escape");
        }
        Advance();
      } else {
        value.push_back(c);
        Advance();
      }
    }
    if (AtEnd()) return Error("unterminated string literal");
    Advance();  // closing quote
    // Language tag: kept as a plain string literal.
    if (!AtEnd() && Peek() == '@') {
      Advance();
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '-')) {
        Advance();
      }
      return Term::StringLiteral(std::move(value));
    }
    // Datatype.
    if (!AtEnd() && Peek() == '^' && PeekAt(1) == '^') {
      Advance();
      Advance();
      std::string datatype;
      if (!AtEnd() && Peek() == '<') {
        Result<std::string> iri = ParseIriRef();
        if (!iri.ok()) return iri.status();
        datatype = std::move(iri).value();
      } else {
        Result<Term> name = ParsePrefixedName();
        if (!name.ok()) return name.status();
        datatype = name->lexical();
      }
      return TypedLiteral(std::move(value), datatype);
    }
    return Term::StringLiteral(std::move(value));
  }

  static Term TypedLiteral(std::string value, const std::string& datatype) {
    if (StartsWith(datatype, kXsd)) {
      std::string_view local = std::string_view(datatype).substr(kXsd.size());
      long long iv = 0;
      double dv = 0.0;
      int y, m, d;
      if ((local == "integer" || local == "int" || local == "long") &&
          ParseInt64(value, &iv)) {
        return Term::IntegerLiteral(iv);
      }
      if ((local == "double" || local == "float" || local == "decimal") &&
          ParseDouble(value, &dv)) {
        return Term::DoubleLiteral(dv);
      }
      if ((local == "date" || local == "dateTime") && value.size() >= 10 &&
          ParseIsoDate(std::string_view(value).substr(0, 10), &y, &m, &d)) {
        return Term::DateLiteral(value.substr(0, 10));
      }
      if (local == "boolean") {
        return Term::BooleanLiteral(value == "true" || value == "1");
      }
    }
    return Term::StringLiteral(std::move(value));
  }

  Result<Term> ParseNumber() {
    std::string text;
    if (Peek() == '-' || Peek() == '+') {
      text.push_back(Peek());
      Advance();
    }
    bool has_dot = false;
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.')) {
      // A '.' followed by non-digit terminates the statement instead.
      if (Peek() == '.') {
        if (!std::isdigit(static_cast<unsigned char>(PeekAt(1)))) break;
        has_dot = true;
      }
      text.push_back(Peek());
      Advance();
    }
    if (text.empty() || text == "-" || text == "+") {
      return Error("malformed number");
    }
    if (has_dot) {
      double value = 0.0;
      if (!ParseDouble(text, &value)) return Error("malformed decimal");
      return Term::DoubleLiteral(value);
    }
    long long value = 0;
    if (!ParseInt64(text, &value)) return Error("malformed integer");
    return Term::IntegerLiteral(value);
  }

  Status ParseTriples() {
    Result<Term> subject = ParseSubject();
    if (!subject.ok()) return subject.status();
    while (true) {
      Result<Term> predicate = ParsePredicate();
      if (!predicate.ok()) return predicate.status();
      while (true) {
        Result<Term> object = ParseObject();
        if (!object.ok()) return object.status();
        store_->Add(subject.value(), predicate.value(), object.value());
        if (!ConsumeChar(',')) break;
      }
      if (!ConsumeChar(';')) break;
      SkipWhitespaceAndComments();
      // A dangling ';' directly before '.' is tolerated.
      if (!AtEnd() && Peek() == '.') break;
    }
    if (!ConsumeChar('.')) return Error("expected '.' at end of triples");
    return Status::Ok();
  }

  std::string_view text_;
  TripleStore* store_;
  size_t pos_ = 0;
  size_t line_ = 1;
  std::map<std::string, std::string> prefixes_;
  std::string base_;
};

}  // namespace

Status ParseTurtle(std::string_view text, TripleStore* store) {
  TurtleParser parser(text, store);
  return parser.Run();
}

Status LoadTurtleFile(const std::string& path, TripleStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTurtle(buf.str(), store);
}

Status LoadRdfFile(const std::string& path, TripleStore* store) {
  if (EndsWith(path, ".ttl") || EndsWith(path, ".turtle")) {
    return LoadTurtleFile(path, store);
  }
  return LoadNTriplesFile(path, store);
}

}  // namespace alex::rdf
