#include "rdf/dataset_stats.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace alex::rdf {

const PredicateStats* DatasetStats::Find(TermId predicate) const {
  auto it = std::lower_bound(
      per_predicate.begin(), per_predicate.end(), predicate,
      [](const PredicateStats& ps, TermId id) { return ps.predicate < id; });
  if (it == per_predicate.end() || it->predicate != predicate) return nullptr;
  return &*it;
}

DatasetStats ComputeStats(const TripleStore& store) {
  DatasetStats stats;
  stats.name = store.name();
  std::vector<Triple> all =
      store.Match(std::nullopt, std::nullopt, std::nullopt);
  stats.triples = all.size();

  std::unordered_set<TermId> subjects;
  std::unordered_set<TermId> objects;
  struct PredAgg {
    size_t triples = 0;
    std::unordered_set<TermId> subjects;
    std::unordered_set<TermId> objects;
  };
  std::unordered_map<TermId, PredAgg> per_pred;
  for (const Triple& t : all) {
    subjects.insert(t.subject);
    objects.insert(t.object);
    PredAgg& agg = per_pred[t.predicate];
    ++agg.triples;
    agg.subjects.insert(t.subject);
    agg.objects.insert(t.object);
  }
  stats.subjects = subjects.size();
  stats.distinct_objects = objects.size();
  stats.predicates = per_pred.size();

  stats.per_predicate.reserve(per_pred.size());
  for (const auto& [pred, agg] : per_pred) {
    PredicateStats ps;
    ps.predicate = pred;
    ps.triple_count = agg.triples;
    ps.distinct_subjects = agg.subjects.size();
    ps.distinct_objects = agg.objects.size();
    stats.per_predicate.push_back(ps);
  }
  std::sort(stats.per_predicate.begin(), stats.per_predicate.end(),
            [](const PredicateStats& a, const PredicateStats& b) {
              return a.predicate < b.predicate;
            });
  return stats;
}

double Drift(const DatasetStats& a, const DatasetStats& b) {
  auto rel = [](size_t x, size_t y) {
    size_t hi = std::max(x, y);
    size_t lo = std::min(x, y);
    if (hi == 0) return 0.0;
    return static_cast<double>(hi - lo) / static_cast<double>(hi);
  };
  double drift = rel(a.triples, b.triples);
  drift = std::max(drift, rel(a.subjects, b.subjects));
  drift = std::max(drift, rel(a.predicates, b.predicates));
  drift = std::max(drift, rel(a.distinct_objects, b.distinct_objects));
  return drift;
}

}  // namespace alex::rdf
