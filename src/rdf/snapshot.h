// Binary snapshots of a TripleStore: the dictionary and the triple list in
// a compact, versioned, little-endian format. Loading a snapshot is an
// order of magnitude faster than re-parsing N-Triples/Turtle, which matters
// when the same data set pair is linked repeatedly (the CLI workflow).
//
// Format (all integers little-endian):
//   magic "ALEXSNP1"            8 bytes
//   name_len u32, name bytes
//   term_count u32
//     per term: kind u8, literal_type u8, lexical_len u32, lexical bytes
//   triple_count u64
//     per triple: subject u32, predicate u32, object u32
#ifndef ALEX_RDF_SNAPSHOT_H_
#define ALEX_RDF_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace alex::rdf {

// Serializes `store` (name, dictionary, triples) to `path`.
Status SaveStoreSnapshot(const TripleStore& store, const std::string& path);

// Loads a snapshot previously written by SaveStoreSnapshot. Term ids are
// preserved.
Result<TripleStore> LoadStoreSnapshot(const std::string& path);

}  // namespace alex::rdf

#endif  // ALEX_RDF_SNAPSHOT_H_
