// Data set statistics (Table 1 in the paper) and per-predicate counts used
// by the PARIS baseline (relation functionalities).
#ifndef ALEX_RDF_DATASET_STATS_H_
#define ALEX_RDF_DATASET_STATS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/triple_store.h"

namespace alex::rdf {

struct PredicateStats {
  TermId predicate = kInvalidTermId;
  size_t triple_count = 0;
  size_t distinct_subjects = 0;
  size_t distinct_objects = 0;

  // PARIS functionality: how close the predicate is to being a function of
  // its subject: distinct_subjects / triple_count. 1.0 means every subject
  // has exactly one value for this predicate.
  double Functionality() const {
    return triple_count == 0
               ? 0.0
               : static_cast<double>(distinct_subjects) / triple_count;
  }
  // Inverse functionality: distinct_objects / triple_count. High values mean
  // the object almost identifies the subject (good linkage evidence).
  double InverseFunctionality() const {
    return triple_count == 0
               ? 0.0
               : static_cast<double>(distinct_objects) / triple_count;
  }
};

struct DatasetStats {
  std::string name;
  size_t triples = 0;
  size_t subjects = 0;
  size_t predicates = 0;
  size_t distinct_objects = 0;
  std::vector<PredicateStats> per_predicate;

  // Lookup by predicate id; returns nullptr if unknown.
  const PredicateStats* Find(TermId predicate) const;
};

// Computes statistics in one pass over the store.
DatasetStats ComputeStats(const TripleStore& store);

// Relative drift between two snapshots of the same store, in [0, 1]: the
// largest relative change across triple, subject, predicate, and distinct
// object counts. Plan caches compare the snapshot a plan was costed with
// against fresh statistics and recompile only past a threshold.
double Drift(const DatasetStats& a, const DatasetStats& b);

}  // namespace alex::rdf

#endif  // ALEX_RDF_DATASET_STATS_H_
