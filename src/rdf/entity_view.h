// Entity views: an entity is a subject IRI together with its attributes,
// where an attribute is a (predicate, object) pair (paper §1: "Each entity
// has a set of attributes (RDF predicates), and values corresponding to
// these attributes (RDF objects)").
#ifndef ALEX_RDF_ENTITY_VIEW_H_
#define ALEX_RDF_ENTITY_VIEW_H_

#include <vector>

#include "rdf/triple_store.h"

namespace alex::rdf {

struct Attribute {
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;
};

// A materialized entity: subject id plus all of its attributes, in SPO order.
struct Entity {
  TermId subject = kInvalidTermId;
  std::vector<Attribute> attributes;
};

// Materializes the entity rooted at `subject`.
Entity GetEntity(const TripleStore& store, TermId subject);

// Materializes every entity in the store (one per distinct subject).
std::vector<Entity> AllEntities(const TripleStore& store);

}  // namespace alex::rdf

#endif  // ALEX_RDF_ENTITY_VIEW_H_
