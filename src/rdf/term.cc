#include "rdf/term.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace alex::rdf {

const char* TermKindName(TermKind kind) {
  switch (kind) {
    case TermKind::kIri:
      return "iri";
    case TermKind::kBlank:
      return "blank";
    case TermKind::kLiteral:
      return "literal";
  }
  return "unknown";
}

const char* LiteralTypeName(LiteralType type) {
  switch (type) {
    case LiteralType::kString:
      return "string";
    case LiteralType::kInteger:
      return "integer";
    case LiteralType::kDouble:
      return "double";
    case LiteralType::kDate:
      return "date";
    case LiteralType::kBoolean:
      return "boolean";
  }
  return "unknown";
}

Term Term::Iri(std::string iri) {
  Term t;
  t.kind_ = TermKind::kIri;
  t.lexical_ = std::move(iri);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind_ = TermKind::kBlank;
  t.lexical_ = std::move(label);
  return t;
}

Term Term::StringLiteral(std::string value) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.literal_type_ = LiteralType::kString;
  t.lexical_ = std::move(value);
  return t;
}

Term Term::IntegerLiteral(int64_t value) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.literal_type_ = LiteralType::kInteger;
  t.lexical_ = std::to_string(value);
  return t;
}

Term Term::DoubleLiteral(double value) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.literal_type_ = LiteralType::kDouble;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  t.lexical_ = buf;
  return t;
}

Term Term::BooleanLiteral(bool value) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.literal_type_ = LiteralType::kBoolean;
  t.lexical_ = value ? "true" : "false";
  return t;
}

Term Term::DateLiteral(std::string iso_date) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.literal_type_ = LiteralType::kDate;
  t.lexical_ = std::move(iso_date);
  return t;
}

int64_t Term::AsInteger() const {
  long long value = 0;
  if (!ParseInt64(lexical_, &value)) return 0;
  return value;
}

double Term::AsDouble() const {
  double value = 0.0;
  if (!ParseDouble(lexical_, &value)) return 0.0;
  return value;
}

bool Term::AsBoolean() const { return lexical_ == "true" || lexical_ == "1"; }

int64_t Term::AsDateDays() const {
  int year = 1970, month = 1, day = 1;
  if (!ParseIsoDate(lexical_, &year, &month, &day)) return 0;
  return CivilDateToDays(year, month, day);
}

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + lexical_ + ">";
    case TermKind::kBlank:
      return "_:" + lexical_;
    case TermKind::kLiteral:
      if (literal_type_ == LiteralType::kString) return "\"" + lexical_ + "\"";
      return "\"" + lexical_ + "\"^^" + LiteralTypeName(literal_type_);
  }
  return lexical_;
}

std::string Term::EncodingKey() const {
  std::string key;
  key.reserve(lexical_.size() + 2);
  key.push_back(static_cast<char>('0' + static_cast<int>(kind_)));
  key.push_back(static_cast<char>('0' + static_cast<int>(literal_type_)));
  key.append(lexical_);
  return key;
}

int64_t CivilDateToDays(int year, int month, int day) {
  // Howard Hinnant's days_from_civil algorithm.
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);  // [0, 399]
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;                      // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return static_cast<int64_t>(era) * 146097 +
         static_cast<int64_t>(doe) - 719468;
}

bool ParseIsoDate(std::string_view s, int* year, int* month, int* day) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return false;
  auto digits = [](std::string_view part, int* out) {
    int value = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + (c - '0');
    }
    *out = value;
    return true;
  };
  if (!digits(s.substr(0, 4), year)) return false;
  if (!digits(s.substr(5, 2), month)) return false;
  if (!digits(s.substr(8, 2), day)) return false;
  return *month >= 1 && *month <= 12 && *day >= 1 && *day <= 31;
}

}  // namespace alex::rdf
