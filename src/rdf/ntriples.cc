#include "rdf/ntriples.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace alex::rdf {
namespace {

constexpr std::string_view kXsdPrefix = "http://www.w3.org/2001/XMLSchema#";

// Cursor over one line.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
  void SkipSpace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
};

Status UnescapeInto(std::string_view raw, std::string* out) {
  out->clear();
  out->reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    char c = raw[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (i + 1 >= raw.size()) {
      return Status::ParseError("dangling escape in literal");
    }
    char e = raw[++i];
    switch (e) {
      case 't':
        out->push_back('\t');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case '"':
        out->push_back('"');
        break;
      case '\\':
        out->push_back('\\');
        break;
      default:
        return Status::ParseError("unsupported escape sequence");
    }
  }
  return Status::Ok();
}

Result<Term> ParseTerm(Cursor* cur) {
  cur->SkipSpace();
  if (cur->AtEnd()) return Status::ParseError("unexpected end of line");
  char c = cur->Peek();
  if (c == '<') {
    size_t close = cur->text.find('>', cur->pos);
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    std::string iri(cur->text.substr(cur->pos + 1, close - cur->pos - 1));
    cur->pos = close + 1;
    return Term::Iri(std::move(iri));
  }
  if (c == '_') {
    if (cur->pos + 1 >= cur->text.size() || cur->text[cur->pos + 1] != ':') {
      return Status::ParseError("malformed blank node");
    }
    size_t start = cur->pos + 2;
    size_t end = start;
    while (end < cur->text.size() && cur->text[end] != ' ' &&
           cur->text[end] != '\t') {
      ++end;
    }
    std::string label(cur->text.substr(start, end - start));
    cur->pos = end;
    return Term::Blank(std::move(label));
  }
  if (c == '"') {
    // Find the closing unescaped quote.
    size_t i = cur->pos + 1;
    while (i < cur->text.size()) {
      if (cur->text[i] == '\\') {
        i += 2;
        continue;
      }
      if (cur->text[i] == '"') break;
      ++i;
    }
    if (i >= cur->text.size()) {
      return Status::ParseError("unterminated literal");
    }
    std::string value;
    Status st =
        UnescapeInto(cur->text.substr(cur->pos + 1, i - cur->pos - 1), &value);
    if (!st.ok()) return st;
    cur->pos = i + 1;
    // Optional language tag or datatype.
    if (!cur->AtEnd() && cur->Peek() == '@') {
      size_t end = cur->pos;
      while (end < cur->text.size() && cur->text[end] != ' ' &&
             cur->text[end] != '\t') {
        ++end;
      }
      cur->pos = end;  // Language tags are dropped; value kept as string.
      return Term::StringLiteral(std::move(value));
    }
    if (cur->pos + 1 < cur->text.size() && cur->Peek() == '^' &&
        cur->text[cur->pos + 1] == '^') {
      cur->pos += 2;
      if (cur->AtEnd() || cur->Peek() != '<') {
        return Status::ParseError("malformed datatype IRI");
      }
      size_t close = cur->text.find('>', cur->pos);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      std::string_view dt =
          cur->text.substr(cur->pos + 1, close - cur->pos - 1);
      cur->pos = close + 1;
      if (StartsWith(dt, kXsdPrefix)) {
        std::string_view local = dt.substr(kXsdPrefix.size());
        if (local == "integer" || local == "int" || local == "long") {
          long long iv = 0;
          if (ParseInt64(value, &iv)) return Term::IntegerLiteral(iv);
        } else if (local == "double" || local == "float" ||
                   local == "decimal") {
          double dv = 0.0;
          if (ParseDouble(value, &dv)) return Term::DoubleLiteral(dv);
        } else if (local == "date" || local == "dateTime") {
          int y, m, d;
          if (ParseIsoDate(std::string_view(value).substr(
                               0, std::min<size_t>(10, value.size())),
                           &y, &m, &d)) {
            return Term::DateLiteral(value.substr(0, 10));
          }
        } else if (local == "boolean") {
          return Term::BooleanLiteral(value == "true" || value == "1");
        }
      }
      return Term::StringLiteral(std::move(value));
    }
    return Term::StringLiteral(std::move(value));
  }
  return Status::ParseError(std::string("unexpected character '") + c + "'");
}

Status ParseLine(std::string_view line, TripleStore* store) {
  Cursor cur{line, 0};
  Result<Term> s = ParseTerm(&cur);
  if (!s.ok()) return s.status();
  if (!s->is_iri() && !s->is_blank()) {
    return Status::ParseError("subject must be an IRI or blank node");
  }
  Result<Term> p = ParseTerm(&cur);
  if (!p.ok()) return p.status();
  if (!p->is_iri()) return Status::ParseError("predicate must be an IRI");
  Result<Term> o = ParseTerm(&cur);
  if (!o.ok()) return o.status();
  cur.SkipSpace();
  if (cur.AtEnd() || cur.Peek() != '.') {
    return Status::ParseError("missing terminating '.'");
  }
  store->Add(s.value(), p.value(), o.value());
  return Status::Ok();
}

std::string EscapeLiteral(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  for (char c : value) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Status ParseNTriples(std::string_view text, TripleStore* store) {
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    ++line_no;
    std::string_view stripped = StripAsciiWhitespace(line);
    if (!stripped.empty() && stripped[0] != '#') {
      Status st = ParseLine(stripped, store);
      if (!st.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  st.message());
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return Status::Ok();
}

Status LoadNTriplesFile(const std::string& path, TripleStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseNTriples(buf.str(), store);
}

std::string TermToNTriples(const Term& term) {
  switch (term.kind()) {
    case TermKind::kIri:
      return "<" + term.lexical() + ">";
    case TermKind::kBlank:
      return "_:" + term.lexical();
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(term.lexical()) + "\"";
      switch (term.literal_type()) {
        case LiteralType::kString:
          break;
        case LiteralType::kInteger:
          out += "^^<http://www.w3.org/2001/XMLSchema#integer>";
          break;
        case LiteralType::kDouble:
          out += "^^<http://www.w3.org/2001/XMLSchema#double>";
          break;
        case LiteralType::kDate:
          out += "^^<http://www.w3.org/2001/XMLSchema#date>";
          break;
        case LiteralType::kBoolean:
          out += "^^<http://www.w3.org/2001/XMLSchema#boolean>";
          break;
      }
      return out;
    }
  }
  return "";
}

std::string WriteNTriples(const TripleStore& store) {
  std::string out;
  const Dictionary& dict = store.dictionary();
  for (const Triple& t :
       store.Match(std::nullopt, std::nullopt, std::nullopt)) {
    out += TermToNTriples(dict.term(t.subject));
    out += " ";
    out += TermToNTriples(dict.term(t.predicate));
    out += " ";
    out += TermToNTriples(dict.term(t.object));
    out += " .\n";
  }
  return out;
}

}  // namespace alex::rdf
