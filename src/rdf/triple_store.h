// In-memory RDF triple store with three orderings (SPO, POS, OSP).
//
// Triples are added with Add(); indexes are (re)built lazily on the first
// read after a write. Pattern matching accepts an optional id for each
// position and streams matching triples.
//
// Example:
//   TripleStore store("dbpedia");
//   TermId s = store.InternTerm(Term::Iri("http://ex/lebron"));
//   TermId p = store.InternTerm(Term::Iri("http://ex/name"));
//   TermId o = store.InternTerm(Term::StringLiteral("LeBron James"));
//   store.Add(s, p, o);
//   for (const Triple& t : store.Match(s, std::nullopt, std::nullopt)) ...
#ifndef ALEX_RDF_TRIPLE_STORE_H_
#define ALEX_RDF_TRIPLE_STORE_H_

#include <optional>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace alex::rdf {

struct Triple {
  TermId subject = kInvalidTermId;
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
};

// An optionally-bound pattern position.
using TermPattern = std::optional<TermId>;

class TripleStore {
 public:
  explicit TripleStore(std::string name) : name_(std::move(name)) {}

  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  const std::string& name() const { return name_; }

  Dictionary& dictionary() { return dictionary_; }
  const Dictionary& dictionary() const { return dictionary_; }

  // Interns `term` into this store's dictionary.
  TermId InternTerm(const Term& term) { return dictionary_.Intern(term); }

  // Adds a triple (duplicates are kept out at index build time).
  void Add(TermId s, TermId p, TermId o);
  // Convenience overload interning the three terms.
  void Add(const Term& s, const Term& p, const Term& o);

  // Number of distinct triples. Builds indexes if dirty.
  size_t size() const;

  // All triples matching the pattern, in SPO order of the chosen index.
  std::vector<Triple> Match(TermPattern s, TermPattern p, TermPattern o) const;

  // True if the fully-bound triple exists.
  bool Contains(TermId s, TermId p, TermId o) const;

  // Distinct subject ids that appear in subject position of any triple.
  std::vector<TermId> Subjects() const;

  // Distinct predicate ids.
  std::vector<TermId> Predicates() const;

  // Objects of (s, p, *) — frequent access path for entity views.
  std::vector<TermId> Objects(TermId s, TermId p) const;

 private:
  void EnsureIndexes() const;

  std::string name_;
  Dictionary dictionary_;
  mutable std::vector<Triple> spo_;  // also the canonical triple list
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  mutable bool dirty_ = false;
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_TRIPLE_STORE_H_
