// In-memory RDF triple store with three orderings (SPO, POS, OSP).
//
// Triples are added with Add(); indexes are (re)built lazily on the first
// read after a write. Pattern matching accepts an optional id for each
// position and streams matching triples. Every bound-position combination
// maps to a contiguous range of one sorted index (the two-bound (s, o) case
// uses the OSP index with prefix (o, s)), so Scan() cursors never filter:
// they walk exactly the matching range, and CountMatches() is two binary
// searches.
//
// Example:
//   TripleStore store("dbpedia");
//   TermId s = store.InternTerm(Term::Iri("http://ex/lebron"));
//   TermId p = store.InternTerm(Term::Iri("http://ex/name"));
//   TermId o = store.InternTerm(Term::StringLiteral("LeBron James"));
//   store.Add(s, p, o);
//   MatchCursor cursor = store.Scan(s, std::nullopt, std::nullopt);
//   while (const Triple* t = cursor.Next()) ...
#ifndef ALEX_RDF_TRIPLE_STORE_H_
#define ALEX_RDF_TRIPLE_STORE_H_

#include <optional>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace alex::rdf {

struct Triple {
  TermId subject = kInvalidTermId;
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
};

// An optionally-bound pattern position.
using TermPattern = std::optional<TermId>;

// One of the store's three sorted orderings. The position sequence of each
// order is the key it sorts by: SPO = (s, p, o), POS = (p, o, s),
// OSP = (o, s, p).
enum class IndexOrder : uint8_t { kSpo, kPos, kOsp };

namespace internal {
inline constexpr int kSpoPositions[3] = {0, 1, 2};
inline constexpr int kPosPositions[3] = {1, 2, 0};
inline constexpr int kOspPositions[3] = {2, 0, 1};
}  // namespace internal

// The position sequence of `order`: three indices into (s, p, o).
inline constexpr const int* IndexPositions(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo: return internal::kSpoPositions;
    case IndexOrder::kPos: return internal::kPosPositions;
    default: return internal::kOspPositions;
  }
}

const char* IndexOrderName(IndexOrder order);

// A lazy scan over one contiguous index range. Obtained from
// TripleStore::Scan(); valid as long as the store is not mutated. The
// range contains exactly the matching triples (no residual filtering), in
// the order of the chosen index.
class MatchCursor {
 public:
  MatchCursor() = default;

  // The next matching triple, or nullptr when exhausted.
  const Triple* Next() {
    if (it_ == end_) return nullptr;
    return it_++;
  }

  // Exact number of matches not yet consumed.
  size_t remaining() const { return static_cast<size_t>(end_ - it_); }

 private:
  friend class TripleStore;
  MatchCursor(const Triple* first, const Triple* last)
      : it_(first), end_(last) {}

  const Triple* it_ = nullptr;
  const Triple* end_ = nullptr;
};

class TripleStore {
 public:
  explicit TripleStore(std::string name) : name_(std::move(name)) {}

  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  const std::string& name() const { return name_; }

  Dictionary& dictionary() { return dictionary_; }
  const Dictionary& dictionary() const { return dictionary_; }

  // Interns `term` into this store's dictionary.
  TermId InternTerm(const Term& term) { return dictionary_.Intern(term); }

  // Adds a triple (duplicates are kept out at index build time).
  void Add(TermId s, TermId p, TermId o);
  // Convenience overload interning the three terms.
  void Add(const Term& s, const Term& p, const Term& o);

  // Number of distinct triples. Builds indexes if dirty.
  size_t size() const;

  // All triples matching the pattern, in the order of the chosen index.
  std::vector<Triple> Match(TermPattern s, TermPattern p, TermPattern o) const;

  // Lazy variant of Match(): a cursor over the matching index range. The
  // cursor borrows the store's index storage — do not mutate the store
  // while cursors are live. Calls EnsureIndexes(), so on a freshly written
  // store the first Scan()/Match()/size() is not thread-safe with other
  // readers; call size() once before sharing the store across threads.
  MatchCursor Scan(TermPattern s, TermPattern p, TermPattern o) const;

  // Scan over one *specific* index. The bound positions must form a prefix
  // of the index's position sequence (e.g. POS accepts nothing bound, p
  // bound, or p and o bound); then the range is exact and the triples come
  // back in that index's sort order — the property merge joins rely on.
  // Violating the prefix requirement returns an empty cursor.
  MatchCursor ScanOrdered(IndexOrder order, TermPattern s, TermPattern p,
                          TermPattern o) const;

  // Exact number of triples matching the pattern (two binary searches; no
  // scan). The cardinality source for compiled-query join ordering.
  size_t CountMatches(TermPattern s, TermPattern p, TermPattern o) const;

  // True if the fully-bound triple exists.
  bool Contains(TermId s, TermId p, TermId o) const;

  // Distinct subject ids that appear in subject position of any triple.
  std::vector<TermId> Subjects() const;

  // Distinct predicate ids.
  std::vector<TermId> Predicates() const;

  // Objects of (s, p, *) — frequent access path for entity views.
  std::vector<TermId> Objects(TermId s, TermId p) const;

 private:
  void EnsureIndexes() const;

  std::string name_;
  Dictionary dictionary_;
  mutable std::vector<Triple> spo_;  // also the canonical triple list
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  mutable bool dirty_ = false;
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_TRIPLE_STORE_H_
