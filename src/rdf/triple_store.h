// In-memory RDF triple store with three orderings (SPO, POS, OSP).
//
// Triples are added with Add(); indexes are (re)built lazily on the first
// read after a write. Pattern matching accepts an optional id for each
// position and streams matching triples. Every bound-position combination
// maps to a contiguous range of one sorted index (the two-bound (s, o) case
// uses the OSP index with prefix (o, s)), so Scan() cursors never filter:
// they walk exactly the matching range, and CountMatches() is two binary
// searches.
//
// Example:
//   TripleStore store("dbpedia");
//   TermId s = store.InternTerm(Term::Iri("http://ex/lebron"));
//   TermId p = store.InternTerm(Term::Iri("http://ex/name"));
//   TermId o = store.InternTerm(Term::StringLiteral("LeBron James"));
//   store.Add(s, p, o);
//   MatchCursor cursor = store.Scan(s, std::nullopt, std::nullopt);
//   while (const Triple* t = cursor.Next()) ...
#ifndef ALEX_RDF_TRIPLE_STORE_H_
#define ALEX_RDF_TRIPLE_STORE_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace alex::rdf {

struct Triple {
  TermId subject = kInvalidTermId;
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
};

// An optionally-bound pattern position.
using TermPattern = std::optional<TermId>;

// One of the store's three sorted orderings. The position sequence of each
// order is the key it sorts by: SPO = (s, p, o), POS = (p, o, s),
// OSP = (o, s, p).
enum class IndexOrder : uint8_t { kSpo, kPos, kOsp };

namespace internal {
inline constexpr int kSpoPositions[3] = {0, 1, 2};
inline constexpr int kPosPositions[3] = {1, 2, 0};
inline constexpr int kOspPositions[3] = {2, 0, 1};
}  // namespace internal

// The position sequence of `order`: three indices into (s, p, o).
inline constexpr const int* IndexPositions(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo: return internal::kSpoPositions;
    case IndexOrder::kPos: return internal::kPosPositions;
    default: return internal::kOspPositions;
  }
}

const char* IndexOrderName(IndexOrder order);

class TripleStore;

// A lazy scan over one contiguous index range. Obtained from
// TripleStore::Scan(); valid as long as the store is not mutated. The
// range contains exactly the matching triples (no residual filtering), in
// the order of the chosen index.
//
// Cursors capture the store's mutation generation at creation; any later
// Add()/Ingest() makes the cursor stale(). Walking a stale cursor is
// undefined behavior (the index storage it borrows may have been resorted
// or reallocated) — debug builds assert.
class MatchCursor {
 public:
  MatchCursor() = default;

  // The next matching triple, or nullptr when exhausted.
  const Triple* Next() {
    assert(!stale() && "MatchCursor used after the store was mutated");
    if (it_ == end_) return nullptr;
    return it_++;
  }

  // Exact number of matches not yet consumed.
  size_t remaining() const {
    assert(!stale() && "MatchCursor used after the store was mutated");
    return static_cast<size_t>(end_ - it_);
  }

  // True once the originating store has been mutated since this cursor was
  // created; the cursor must no longer be walked.
  bool stale() const;

 private:
  friend class TripleStore;
  MatchCursor(const TripleStore* store, uint64_t generation,
              const Triple* first, const Triple* last)
      : it_(first), end_(last), store_(store), generation_(generation) {}

  const Triple* it_ = nullptr;
  const Triple* end_ = nullptr;
  const TripleStore* store_ = nullptr;
  uint64_t generation_ = 0;
};

// One epoch-stamped batch of triple mutations: `retracts` are removed
// first, then `adds` are inserted. Duplicate adds and retracts of absent
// triples are tolerated (and not counted in the result).
struct IngestBatch {
  std::vector<Triple> adds;
  std::vector<Triple> retracts;
};

// What an Ingest() call actually changed.
struct IngestResult {
  size_t added = 0;      // distinct triples newly inserted
  size_t retracted = 0;  // triples actually removed
  uint64_t epoch = 0;    // the store's ingest epoch after this batch
};

class TripleStore {
 public:
  explicit TripleStore(std::string name) : name_(std::move(name)) {}

  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  const std::string& name() const { return name_; }

  Dictionary& dictionary() { return dictionary_; }
  const Dictionary& dictionary() const { return dictionary_; }

  // Interns `term` into this store's dictionary.
  TermId InternTerm(const Term& term) { return dictionary_.Intern(term); }

  // Adds a triple (duplicates are kept out at index build time).
  void Add(TermId s, TermId p, TermId o);
  // Convenience overload interning the three terms.
  void Add(const Term& s, const Term& p, const Term& o);

  // Applies one streaming mutation batch: retracts, then adds. Rebuilds
  // the indexes eagerly so the store is immediately readable, bumps the
  // mutation generation (invalidating live cursors) and the ingest epoch.
  IngestResult Ingest(const IngestBatch& batch);

  // Monotonic mutation counter: bumped by every Add()/Ingest(). Cursors
  // compare their captured value against this to detect staleness.
  uint64_t generation() const { return generation_; }

  // Number of Ingest() batches applied so far.
  uint64_t ingest_epoch() const { return ingest_epoch_; }

  // Number of distinct triples. Builds indexes if dirty.
  size_t size() const;

  // All triples matching the pattern, in the order of the chosen index.
  std::vector<Triple> Match(TermPattern s, TermPattern p, TermPattern o) const;

  // Lazy variant of Match(): a cursor over the matching index range. The
  // cursor borrows the store's index storage — do not mutate the store
  // while cursors are live. Calls EnsureIndexes(), so on a freshly written
  // store the first Scan()/Match()/size() is not thread-safe with other
  // readers; call size() once before sharing the store across threads.
  MatchCursor Scan(TermPattern s, TermPattern p, TermPattern o) const;

  // Scan over one *specific* index. The bound positions must form a prefix
  // of the index's position sequence (e.g. POS accepts nothing bound, p
  // bound, or p and o bound); then the range is exact and the triples come
  // back in that index's sort order — the property merge joins rely on.
  // Violating the prefix requirement returns an empty cursor.
  MatchCursor ScanOrdered(IndexOrder order, TermPattern s, TermPattern p,
                          TermPattern o) const;

  // Exact number of triples matching the pattern (two binary searches; no
  // scan). The cardinality source for compiled-query join ordering.
  size_t CountMatches(TermPattern s, TermPattern p, TermPattern o) const;

  // True if the fully-bound triple exists.
  bool Contains(TermId s, TermId p, TermId o) const;

  // Distinct subject ids that appear in subject position of any triple.
  std::vector<TermId> Subjects() const;

  // Distinct predicate ids.
  std::vector<TermId> Predicates() const;

  // Objects of (s, p, *) — frequent access path for entity views.
  std::vector<TermId> Objects(TermId s, TermId p) const;

 private:
  void EnsureIndexes() const;

  std::string name_;
  Dictionary dictionary_;
  mutable std::vector<Triple> spo_;  // also the canonical triple list
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  mutable bool dirty_ = false;
  uint64_t generation_ = 0;
  uint64_t ingest_epoch_ = 0;
};

inline bool MatchCursor::stale() const {
  return store_ != nullptr && store_->generation() != generation_;
}

}  // namespace alex::rdf

#endif  // ALEX_RDF_TRIPLE_STORE_H_
