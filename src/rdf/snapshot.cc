#include "rdf/snapshot.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/strings.h"

namespace alex::rdf {
namespace {

constexpr char kMagic[8] = {'A', 'L', 'E', 'X', 'S', 'N', 'P', '1'};

void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}
void PutU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}
void PutU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}
void PutString(std::string* out, const std::string& value) {
  PutU32(out, static_cast<uint32_t>(value.size()));
  out->append(value);
}

// Bounds-checked little-endian reader.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool GetU8(uint8_t* value) {
    if (pos_ + 1 > size_) return false;
    *value = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* value) {
    if (pos_ + 4 > size_) return false;
    *value = 0;
    for (int i = 0; i < 4; ++i) {
      *value |= static_cast<uint32_t>(
                    static_cast<uint8_t>(data_[pos_ + i]))
                << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* value) {
    if (pos_ + 8 > size_) return false;
    *value = 0;
    for (int i = 0; i < 8; ++i) {
      *value |= static_cast<uint64_t>(
                    static_cast<uint8_t>(data_[pos_ + i]))
                << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool GetString(std::string* value) {
    uint32_t length = 0;
    if (!GetU32(&length)) return false;
    if (pos_ + length > size_) return false;
    value->assign(data_ + pos_, length);
    pos_ += length;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Term MakeTerm(uint8_t kind, uint8_t literal_type, std::string lexical) {
  switch (static_cast<TermKind>(kind)) {
    case TermKind::kIri:
      return Term::Iri(std::move(lexical));
    case TermKind::kBlank:
      return Term::Blank(std::move(lexical));
    case TermKind::kLiteral:
      switch (static_cast<LiteralType>(literal_type)) {
        case LiteralType::kString:
          return Term::StringLiteral(std::move(lexical));
        case LiteralType::kInteger: {
          long long value = 0;
          ParseInt64(lexical, &value);
          return Term::IntegerLiteral(value);
        }
        case LiteralType::kDouble: {
          double value = 0.0;
          ParseDouble(lexical, &value);
          return Term::DoubleLiteral(value);
        }
        case LiteralType::kDate:
          return Term::DateLiteral(std::move(lexical));
        case LiteralType::kBoolean:
          return Term::BooleanLiteral(lexical == "true" || lexical == "1");
      }
      return Term::StringLiteral(std::move(lexical));
  }
  return Term::StringLiteral(std::move(lexical));
}

}  // namespace

Status SaveStoreSnapshot(const TripleStore& store,
                         const std::string& path) {
  std::string buffer;
  buffer.append(kMagic, sizeof(kMagic));
  PutString(&buffer, store.name());

  const Dictionary& dict = store.dictionary();
  PutU32(&buffer, static_cast<uint32_t>(dict.size()));
  for (TermId id = 0; id < dict.size(); ++id) {
    const Term& term = dict.term(id);
    PutU8(&buffer, static_cast<uint8_t>(term.kind()));
    PutU8(&buffer, static_cast<uint8_t>(term.literal_type()));
    PutString(&buffer, term.lexical());
  }

  std::vector<Triple> triples =
      store.Match(std::nullopt, std::nullopt, std::nullopt);
  PutU64(&buffer, triples.size());
  for (const Triple& t : triples) {
    PutU32(&buffer, t.subject);
    PutU32(&buffer, t.predicate);
    PutU32(&buffer, t.object);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<TripleStore> LoadStoreSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  if (buffer.size() < sizeof(kMagic) ||
      std::memcmp(buffer.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not an ALEX snapshot: " + path);
  }
  Reader body(buffer.data() + sizeof(kMagic),
              buffer.size() - sizeof(kMagic));
  std::string name;
  if (!body.GetString(&name)) return Status::ParseError("truncated name");
  TripleStore store(name);

  uint32_t term_count = 0;
  if (!body.GetU32(&term_count)) {
    return Status::ParseError("truncated term count");
  }
  for (uint32_t i = 0; i < term_count; ++i) {
    uint8_t kind = 0, literal_type = 0;
    std::string lexical;
    if (!body.GetU8(&kind) || !body.GetU8(&literal_type) ||
        !body.GetString(&lexical)) {
      return Status::ParseError("truncated term table");
    }
    if (kind > static_cast<uint8_t>(TermKind::kLiteral) ||
        literal_type > static_cast<uint8_t>(LiteralType::kBoolean)) {
      return Status::ParseError("corrupt term tags");
    }
    TermId id =
        store.InternTerm(MakeTerm(kind, literal_type, std::move(lexical)));
    if (id != i) {
      return Status::ParseError("duplicate term in snapshot dictionary");
    }
  }

  uint64_t triple_count = 0;
  if (!body.GetU64(&triple_count)) {
    return Status::ParseError("truncated triple count");
  }
  for (uint64_t i = 0; i < triple_count; ++i) {
    uint32_t s = 0, p = 0, o = 0;
    if (!body.GetU32(&s) || !body.GetU32(&p) || !body.GetU32(&o)) {
      return Status::ParseError("truncated triples");
    }
    if (s >= term_count || p >= term_count || o >= term_count) {
      return Status::ParseError("triple references unknown term");
    }
    store.Add(s, p, o);
  }
  if (!body.AtEnd()) return Status::ParseError("trailing bytes in snapshot");
  return store;
}

}  // namespace alex::rdf
