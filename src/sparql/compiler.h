// Query compilation: from the parsed algebra to a TermId-space plan bound
// to one TripleStore.
//
// The legacy executor re-resolves every constant through the dictionary on
// every recursive step, keys bindings by variable *name*, and orders joins
// by the unbound-variable count alone. Compilation hoists all of that out
// of the hot loop, once per (query, store):
//
//   * every constant PatternNode is resolved to its TermId (a pattern with
//     a constant the store has never seen marks its group unmatchable);
//   * every variable gets a dense slot, so a binding is a flat TermId array
//     indexed by slot instead of a string-keyed map of Term copies;
//   * triple patterns are ordered by estimated cardinality: the exact index
//     range count of the constant-bound prefix (TripleStore::CountMatches),
//     shrunk by per-predicate distinct counts from rdf::DatasetStats for
//     positions whose variable is bound by an earlier pattern — instead of
//     just counting unbound variables;
//   * single-variable FILTER expressions are compiled to id-space
//     predicates: a bitmap over the dictionary, one truth bit per TermId,
//     so the executor tests a bit instead of re-evaluating the expression
//     tree (term-space evaluation remains for multi-variable filters).
//
// A CompiledQuery borrows the Query and the TripleStore; both must outlive
// it. Compiling is cheap (dictionary lookups plus a few binary searches per
// pattern; the filter bitmaps cost one pass over the dictionary and are
// only built for queries that have eligible filters), so per-episode
// workloads can compile on every execution or reuse the plan — results are
// identical either way.
#ifndef ALEX_SPARQL_COMPILER_H_
#define ALEX_SPARQL_COMPILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/dataset_stats.h"
#include "rdf/triple_store.h"
#include "sparql/algebra.h"
#include "sparql/physical_plan.h"

namespace alex::sparql {

// One pattern position: a resolved constant id or a variable slot.
struct CompiledNode {
  bool is_variable = false;
  VarSlot slot = kNoSlot;                // valid iff is_variable
  rdf::TermId id = rdf::kInvalidTermId;  // valid iff !is_variable
};

struct CompiledPattern {
  CompiledNode subject;
  CompiledNode predicate;
  CompiledNode object;
  // The compile-time cardinality estimate that ordered this pattern
  // (diagnostics only).
  double estimated_rows = 0.0;
};

// A basic graph pattern in execution order: the required patterns of one
// UNION alternative, or one OPTIONAL group.
struct CompiledGroup {
  std::vector<CompiledPattern> patterns;
  // True when some constant of the group failed to resolve: the group can
  // produce no match (for an OPTIONAL group: never extends a solution).
  bool unmatchable = false;
};

// A FILTER bound to slots. When `bitmap` is non-empty the filter touches
// exactly one variable and bitmap[id] holds the precomputed verdict for
// binding that variable to TermId `id`; otherwise the executor falls back
// to term-space EvalFilter over `expr`.
struct CompiledFilter {
  const FilterExpr* expr = nullptr;
  std::vector<VarSlot> slots;  // distinct variable slots referenced
  std::vector<bool> bitmap;    // dictionary-sized truth table (may be empty)
  VarSlot bitmap_slot = kNoSlot;
};

struct CompiledQuery {
  const Query* query = nullptr;            // borrowed
  const rdf::TripleStore* store = nullptr;  // borrowed

  size_t num_slots = 0;
  std::vector<std::string> slot_names;  // slot -> variable name

  // One group per UNION alternative (alternative 0 first), each in
  // statistics-driven execution order.
  std::vector<CompiledGroup> alternatives;
  std::vector<CompiledGroup> optionals;

  // One physical operator tree per alternative (parallel to
  // `alternatives`), produced by sparql/plangen.h. A plan with root == -1
  // means the generator declined and the executor enumerates that group
  // greedily. Empty when CompileOptions::build_physical_plans is false.
  std::vector<PhysicalPlan> plans;

  // Slots whose values anyone outside a single pattern observes:
  // projection (or select_all), GROUP BY, aggregates, ORDER BY, FILTERs,
  // and every pattern of every OPTIONAL group. A slot *not* in this set
  // that occurs in exactly one pattern position may be eliminated by an
  // AggregatedIndexScan.
  std::vector<bool> needed_slots;

  std::vector<CompiledFilter> filters;

  // Projection in slot space (empty when select_all; then all slots are
  // projected in slot order).
  std::vector<VarSlot> select_slots;
  std::vector<VarSlot> group_by_slots;    // parallel to query->group_by
  std::vector<VarSlot> aggregate_slots;   // parallel to query->aggregates;
                                          // kNoSlot for COUNT(*)
  struct OrderSlot {
    VarSlot slot = kNoSlot;
    bool descending = false;
  };
  std::vector<OrderSlot> order_slots;
};

struct CompileOptions {
  // Optional precomputed statistics for the store; used to estimate how
  // much a bound variable shrinks a pattern's index range. Without them the
  // compiler still orders by the exact constant-prefix range counts.
  const rdf::DatasetStats* stats = nullptr;
  // Dictionaries larger than this skip filter-bitmap construction (the
  // bitmap costs one expression evaluation per term).
  size_t max_bitmap_terms = 1u << 22;
  // Build a physical operator tree per alternative (sparql/plangen.h).
  // The greedy executor ignores the plans; the planned executor requires
  // them.
  bool build_physical_plans = true;
};

// Compiles `query` against `store`. The returned plan borrows both.
CompiledQuery CompileQuery(const Query& query, const rdf::TripleStore& store,
                           const CompileOptions& options = {});

// Cardinality estimate for one pattern given which slots are already bound:
// the exact index-range count over the constant positions, divided by a
// distinct-count estimate for every bound variable position. Shared by the
// greedy join orderer and the DP plan generator's cost model.
double EstimatePatternRows(const CompiledPattern& pattern,
                           const std::vector<bool>& bound,
                           const rdf::TripleStore& store,
                           const rdf::DatasetStats* stats);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_COMPILER_H_
