#include "sparql/tokenizer.h"

#include <cctype>

#include "common/strings.h"

namespace alex::sparql {
namespace {

bool IsKeyword(const std::string& upper) {
  static const char* kKeywords[] = {
      "SELECT", "DISTINCT", "WHERE", "FILTER", "PREFIX",   "LIMIT",
      "ASK",    "CONTAINS", "STR",   "A",      "UNION",    "OPTIONAL",
      "ORDER",  "BY",       "ASC",   "DESC",   "OFFSET",  "COUNT",
      "SUM",    "AVG",      "MIN",   "MAX",    "AS",       "GROUP"};
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < n && query[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (c == '?' || c == '$') {
      size_t start = ++i;
      while (i < n && IsNameChar(query[i])) ++i;
      if (i == start) {
        return Status::ParseError("empty variable name at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kVariable;
      tok.text = std::string(query.substr(start, i - start));
    } else if (c == '<' && [&] {
                 // '<' starts an IRI only if a '>' follows with no
                 // intervening whitespace; otherwise it is the less-than
                 // operator (handled by the punctuation branch below).
                 size_t close = query.find('>', i);
                 if (close == std::string_view::npos) return false;
                 for (size_t k = i + 1; k < close; ++k) {
                   if (std::isspace(static_cast<unsigned char>(query[k]))) {
                     return false;
                   }
                 }
                 return true;
               }()) {
      size_t close = query.find('>', i);
      tok.type = TokenType::kIri;
      tok.text = std::string(query.substr(i + 1, close - i - 1));
      i = close + 1;
    } else if (c == '"') {
      std::string value;
      ++i;
      while (i < n && query[i] != '"') {
        if (query[i] == '\\' && i + 1 < n) {
          char e = query[i + 1];
          switch (e) {
            case 'n':
              value.push_back('\n');
              break;
            case 't':
              value.push_back('\t');
              break;
            case '"':
              value.push_back('"');
              break;
            case '\\':
              value.push_back('\\');
              break;
            default:
              value.push_back(e);
          }
          i += 2;
        } else {
          value.push_back(query[i]);
          ++i;
        }
      }
      if (i >= n) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(tok.offset));
      }
      ++i;  // closing quote
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      // Skip language tags / datatypes; the literal keeps its string form.
      if (i < n && query[i] == '@') {
        ++i;  // skip '@'
        while (i < n && (IsNameChar(query[i]) || query[i] == '-')) ++i;
      } else if (i + 1 < n && query[i] == '^' && query[i + 1] == '^') {
        i += 2;
        if (i < n && query[i] == '<') {
          size_t close = query.find('>', i);
          if (close == std::string_view::npos) {
            return Status::ParseError("unterminated datatype IRI");
          }
          i = close + 1;
        } else {
          while (i < n && (IsNameChar(query[i]) || query[i] == ':')) ++i;
        }
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(query[i])) ||
                       query[i] == '.')) {
        ++i;
      }
      tok.type = TokenType::kNumber;
      tok.text = std::string(query.substr(start, i - start));
    } else if (std::isalpha(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (IsNameChar(query[i]) || query[i] == ':')) ++i;
      std::string word(query.substr(start, i - start));
      if (word.find(':') != std::string::npos) {
        tok.type = TokenType::kPrefixedName;
        tok.text = std::move(word);
      } else {
        std::string upper;
        for (char w : word) {
          upper.push_back(static_cast<char>(
              std::toupper(static_cast<unsigned char>(w))));
        }
        if (IsKeyword(upper)) {
          tok.type = TokenType::kKeyword;
          tok.text = std::move(upper);
        } else {
          return Status::ParseError("unexpected word '" + word +
                                    "' at offset " + std::to_string(start));
        }
      }
    } else {
      // Punctuation / operators.
      tok.type = TokenType::kPunct;
      if (i + 1 < n) {
        std::string two(query.substr(i, 2));
        if (two == "!=" || two == "<=" || two == ">=" || two == "&&" ||
            two == "||") {
          tok.text = two;
          i += 2;
          tokens.push_back(std::move(tok));
          continue;
        }
      }
      switch (c) {
        case '{':
        case '}':
        case '(':
        case ')':
        case '.':
        case ',':
        case ';':
        case '*':
        case '=':
        case '<':
        case '>':
        case '!':
          tok.text = std::string(1, c);
          ++i;
          break;
        default:
          return Status::ParseError(std::string("unexpected character '") +
                                    c + "' at offset " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.offset = n;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace alex::sparql
