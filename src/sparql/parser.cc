#include "sparql/parser.h"

#include <map>
#include <memory>
#include <utility>

#include "common/strings.h"
#include "sparql/tokenizer.h"

namespace alex::sparql {
namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

// Local helper: propagate a Status out of a Result-returning function.
#define ALEX_RETURN_IF_ERROR_R(expr)             \
  do {                                           \
    ::alex::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    ALEX_RETURN_IF_ERROR_R(ParsePrefixes());
    Query query;
    if (Accept(TokenType::kKeyword, "ASK")) {
      query.is_ask = true;
    } else {
      if (!Accept(TokenType::kKeyword, "SELECT")) {
        return Error("expected SELECT or ASK");
      }
      if (Accept(TokenType::kKeyword, "DISTINCT")) query.distinct = true;
      if (Accept(TokenType::kPunct, "*")) {
        query.select_all = true;
      } else {
        while (true) {
          if (Peek().type == TokenType::kVariable) {
            query.select.push_back(Next().text);
            continue;
          }
          if (Peek().Is(TokenType::kPunct, "(")) {
            Result<Aggregate> agg = ParseAggregate();
            if (!agg.ok()) return agg.status();
            query.aggregates.push_back(std::move(agg).value());
            continue;
          }
          break;
        }
        if (query.select.empty() && query.aggregates.empty()) {
          return Error("expected projection variables");
        }
      }
    }
    if (!Accept(TokenType::kKeyword, "WHERE")) return Error("expected WHERE");
    if (!Accept(TokenType::kPunct, "{")) return Error("expected '{'");

    // UNION branches are normalized into disjunctive normal form: plain
    // triples extend every alternative; each `{ A } UNION { B }` group
    // multiplies the alternatives by its branches.
    std::vector<std::vector<TriplePattern>> alternatives(1);
    while (!Accept(TokenType::kPunct, "}")) {
      if (Peek().type == TokenType::kEof) return Error("unterminated block");
      if (Accept(TokenType::kKeyword, "FILTER")) {
        Result<std::unique_ptr<FilterExpr>> filter = ParseFilter();
        if (!filter.ok()) return filter.status();
        query.filters.push_back(std::move(filter).value());
        Accept(TokenType::kPunct, ".");
        continue;
      }
      if (Accept(TokenType::kKeyword, "OPTIONAL")) {
        Result<std::vector<TriplePattern>> group = ParseGroup();
        if (!group.ok()) return group.status();
        query.optionals.push_back(std::move(group).value());
        Accept(TokenType::kPunct, ".");
        continue;
      }
      if (Peek().Is(TokenType::kPunct, "{")) {
        // `{ A } UNION { B } (UNION { C })*`
        std::vector<std::vector<TriplePattern>> branches;
        Result<std::vector<TriplePattern>> first = ParseGroup();
        if (!first.ok()) return first.status();
        branches.push_back(std::move(first).value());
        while (Accept(TokenType::kKeyword, "UNION")) {
          Result<std::vector<TriplePattern>> branch = ParseGroup();
          if (!branch.ok()) return branch.status();
          branches.push_back(std::move(branch).value());
        }
        std::vector<std::vector<TriplePattern>> expanded;
        expanded.reserve(alternatives.size() * branches.size());
        for (const auto& alternative : alternatives) {
          for (const auto& branch : branches) {
            std::vector<TriplePattern> merged = alternative;
            merged.insert(merged.end(), branch.begin(), branch.end());
            expanded.push_back(std::move(merged));
          }
        }
        alternatives = std::move(expanded);
        Accept(TokenType::kPunct, ".");
        continue;
      }
      std::vector<TriplePattern> block;
      ALEX_RETURN_IF_ERROR_R(ParseTripleBlock(&block));
      for (auto& alternative : alternatives) {
        alternative.insert(alternative.end(), block.begin(), block.end());
      }
    }
    query.patterns = std::move(alternatives[0]);
    for (size_t i = 1; i < alternatives.size(); ++i) {
      query.more_alternatives.push_back(std::move(alternatives[i]));
    }

    // Solution modifiers: GROUP BY, ORDER BY, then LIMIT / OFFSET.
    if (Accept(TokenType::kKeyword, "GROUP")) {
      if (!Accept(TokenType::kKeyword, "BY")) {
        return Error("expected BY after GROUP");
      }
      while (Peek().type == TokenType::kVariable) {
        query.group_by.push_back(Next().text);
      }
      if (query.group_by.empty()) {
        return Error("expected grouping variables after GROUP BY");
      }
    }
    if (!query.group_by.empty() && query.aggregates.empty()) {
      return Error("GROUP BY requires aggregate projections");
    }
    if (!query.aggregates.empty()) {
      // Every plainly-projected variable must be a grouping key.
      for (const std::string& var : query.select) {
        bool grouped = false;
        for (const std::string& key : query.group_by) {
          if (key == var) grouped = true;
        }
        if (!grouped) {
          return Error("projected variable ?" + var +
                       " must appear in GROUP BY");
        }
      }
    }
    if (Accept(TokenType::kKeyword, "ORDER")) {
      if (!Accept(TokenType::kKeyword, "BY")) {
        return Error("expected BY after ORDER");
      }
      while (true) {
        OrderKey key;
        if (Accept(TokenType::kKeyword, "ASC") ||
            Accept(TokenType::kKeyword, "DESC")) {
          key.descending = tokens_[pos_ - 1].text == "DESC";
          if (!Accept(TokenType::kPunct, "(")) return Error("expected '('");
          if (Peek().type != TokenType::kVariable) {
            return Error("expected variable in ORDER BY");
          }
          key.variable = Next().text;
          if (!Accept(TokenType::kPunct, ")")) return Error("expected ')'");
        } else if (Peek().type == TokenType::kVariable) {
          key.variable = Next().text;
        } else {
          break;
        }
        query.order_by.push_back(std::move(key));
      }
      if (query.order_by.empty()) {
        return Error("expected sort keys after ORDER BY");
      }
    }
    for (int i = 0; i < 2; ++i) {
      if (Accept(TokenType::kKeyword, "LIMIT")) {
        long long limit = 0;
        if (Peek().type != TokenType::kNumber ||
            !ParseInt64(Next().text, &limit) || limit < 0) {
          return Error("expected a non-negative number after LIMIT");
        }
        query.limit = static_cast<size_t>(limit);
      } else if (Accept(TokenType::kKeyword, "OFFSET")) {
        long long offset = 0;
        if (Peek().type != TokenType::kNumber ||
            !ParseInt64(Next().text, &offset) || offset < 0) {
          return Error("expected a non-negative number after OFFSET");
        }
        query.offset = static_cast<size_t>(offset);
      }
    }
    if (Peek().type != TokenType::kEof) return Error("trailing tokens");
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++
                                                                 : pos_]; }
  bool Accept(TokenType type, std::string_view text) {
    if (Peek().Is(type, text)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(std::string message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().offset));
  }

  Status ParsePrefixes() {
    while (Accept(TokenType::kKeyword, "PREFIX")) {
      // The tokenizer lexes "ex:" as a prefixed name with empty local part.
      if (Peek().type != TokenType::kPrefixedName) {
        return Error("expected prefix name");
      }
      std::string pname = Next().text;
      if (pname.empty() || pname.back() != ':') {
        return Error("prefix must end with ':'");
      }
      pname.pop_back();
      if (Peek().type != TokenType::kIri) {
        return Error("expected IRI after prefix name");
      }
      prefixes_[pname] = Next().text;
    }
    return Status::Ok();
  }

  Result<rdf::Term> ExpandPrefixedName(const std::string& pname,
                                       size_t offset) {
    size_t colon = pname.find(':');
    std::string prefix = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Status::ParseError("unknown prefix '" + prefix +
                                "' at offset " + std::to_string(offset));
    }
    return rdf::Term::Iri(it->second + local);
  }

  Result<PatternNode> ParseNode() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kVariable:
        return PatternNode::Var(Next().text);
      case TokenType::kIri:
        return PatternNode::Const(rdf::Term::Iri(Next().text));
      case TokenType::kPrefixedName: {
        Token t = Next();
        Result<rdf::Term> term = ExpandPrefixedName(t.text, t.offset);
        if (!term.ok()) return term.status();
        return PatternNode::Const(std::move(term).value());
      }
      case TokenType::kString:
        return PatternNode::Const(rdf::Term::StringLiteral(Next().text));
      case TokenType::kNumber: {
        Token t = Next();
        if (t.text.find('.') != std::string::npos) {
          double value = 0.0;
          ParseDouble(t.text, &value);
          return PatternNode::Const(rdf::Term::DoubleLiteral(value));
        }
        long long value = 0;
        ParseInt64(t.text, &value);
        return PatternNode::Const(rdf::Term::IntegerLiteral(value));
      }
      case TokenType::kKeyword:
        if (tok.text == "A") {
          Next();
          return PatternNode::Const(rdf::Term::Iri(std::string(kRdfType)));
        }
        return Error("unexpected keyword '" + tok.text + "'");
      default:
        return Error("expected a pattern node");
    }
  }

  // Parses `s p o (';' p o)* (',' o)* '.'` style triple groups into `out`.
  Status ParseTripleBlock(std::vector<TriplePattern>* out) {
    Result<PatternNode> subject = ParseNode();
    if (!subject.ok()) return subject.status();
    while (true) {
      Result<PatternNode> predicate = ParseNode();
      if (!predicate.ok()) return predicate.status();
      while (true) {
        Result<PatternNode> object = ParseNode();
        if (!object.ok()) return object.status();
        TriplePattern pattern;
        pattern.subject = subject.value();
        pattern.predicate = predicate.value();
        pattern.object = std::move(object).value();
        out->push_back(std::move(pattern));
        if (!Accept(TokenType::kPunct, ",")) break;
      }
      if (!Accept(TokenType::kPunct, ";")) break;
      if (Peek().Is(TokenType::kPunct, ".") ||
          Peek().Is(TokenType::kPunct, "}")) {
        break;  // dangling ';' before terminator
      }
    }
    Accept(TokenType::kPunct, ".");
    return Status::Ok();
  }

  // Parses `{ triples }` (no nested groups or filters inside).
  Result<std::vector<TriplePattern>> ParseGroup() {
    if (!Accept(TokenType::kPunct, "{")) return Error("expected '{'");
    std::vector<TriplePattern> patterns;
    while (!Accept(TokenType::kPunct, "}")) {
      if (Peek().type == TokenType::kEof) return Error("unterminated group");
      if (Peek().Is(TokenType::kPunct, "{") ||
          Peek().Is(TokenType::kKeyword, "FILTER") ||
          Peek().Is(TokenType::kKeyword, "OPTIONAL")) {
        return Error("nested groups are not supported inside this group");
      }
      ALEX_RETURN_IF_ERROR_R(ParseTripleBlock(&patterns));
    }
    return patterns;
  }

  // `( COUNT ( * | ?v ) AS ?name )` — leading '(' not yet consumed.
  Result<Aggregate> ParseAggregate() {
    if (!Accept(TokenType::kPunct, "(")) return Error("expected '('");
    Aggregate agg;
    if (Accept(TokenType::kKeyword, "COUNT")) {
      agg.kind = Aggregate::Kind::kCount;
    } else if (Accept(TokenType::kKeyword, "SUM")) {
      agg.kind = Aggregate::Kind::kSum;
    } else if (Accept(TokenType::kKeyword, "AVG")) {
      agg.kind = Aggregate::Kind::kAvg;
    } else if (Accept(TokenType::kKeyword, "MIN")) {
      agg.kind = Aggregate::Kind::kMin;
    } else if (Accept(TokenType::kKeyword, "MAX")) {
      agg.kind = Aggregate::Kind::kMax;
    } else {
      return Error("expected an aggregate function");
    }
    if (!Accept(TokenType::kPunct, "(")) return Error("expected '('");
    if (Accept(TokenType::kPunct, "*")) {
      if (agg.kind != Aggregate::Kind::kCount) {
        return Error("'*' is only valid in COUNT");
      }
    } else if (Peek().type == TokenType::kVariable) {
      agg.variable = Next().text;
    } else {
      return Error("expected '*' or a variable");
    }
    if (!Accept(TokenType::kPunct, ")")) return Error("expected ')'");
    if (!Accept(TokenType::kKeyword, "AS")) return Error("expected AS");
    if (Peek().type != TokenType::kVariable) {
      return Error("expected output variable after AS");
    }
    agg.as = Next().text;
    if (!Accept(TokenType::kPunct, ")")) return Error("expected ')'");
    return agg;
  }

  Result<std::unique_ptr<FilterExpr>> ParseFilter() {
    if (!Accept(TokenType::kPunct, "(")) return Error("expected '('");
    Result<std::unique_ptr<FilterExpr>> expr = ParseOr();
    if (!expr.ok()) return expr.status();
    if (!Accept(TokenType::kPunct, ")")) return Error("expected ')'");
    return expr;
  }

  Result<std::unique_ptr<FilterExpr>> ParseOr() {
    Result<std::unique_ptr<FilterExpr>> lhs = ParseAnd();
    if (!lhs.ok()) return lhs.status();
    if (!Peek().Is(TokenType::kPunct, "||")) return lhs;
    auto node = std::make_unique<FilterExpr>();
    node->op = FilterOp::kOr;
    node->children.push_back(std::move(lhs).value());
    while (Accept(TokenType::kPunct, "||")) {
      Result<std::unique_ptr<FilterExpr>> rhs = ParseAnd();
      if (!rhs.ok()) return rhs.status();
      node->children.push_back(std::move(rhs).value());
    }
    return node;
  }

  Result<std::unique_ptr<FilterExpr>> ParseAnd() {
    Result<std::unique_ptr<FilterExpr>> lhs = ParseUnary();
    if (!lhs.ok()) return lhs.status();
    if (!Peek().Is(TokenType::kPunct, "&&")) return lhs;
    auto node = std::make_unique<FilterExpr>();
    node->op = FilterOp::kAnd;
    node->children.push_back(std::move(lhs).value());
    while (Accept(TokenType::kPunct, "&&")) {
      Result<std::unique_ptr<FilterExpr>> rhs = ParseUnary();
      if (!rhs.ok()) return rhs.status();
      node->children.push_back(std::move(rhs).value());
    }
    return node;
  }

  Result<std::unique_ptr<FilterExpr>> ParseUnary() {
    if (Accept(TokenType::kPunct, "!")) {
      Result<std::unique_ptr<FilterExpr>> inner = ParseUnary();
      if (!inner.ok()) return inner.status();
      auto node = std::make_unique<FilterExpr>();
      node->op = FilterOp::kNot;
      node->children.push_back(std::move(inner).value());
      return node;
    }
    if (Accept(TokenType::kPunct, "(")) {
      Result<std::unique_ptr<FilterExpr>> inner = ParseOr();
      if (!inner.ok()) return inner.status();
      if (!Accept(TokenType::kPunct, ")")) return Error("expected ')'");
      return inner;
    }
    if (Accept(TokenType::kKeyword, "CONTAINS")) {
      if (!Accept(TokenType::kPunct, "(")) return Error("expected '('");
      Result<PatternNode> lhs = ParseNode();
      if (!lhs.ok()) return lhs.status();
      if (!Accept(TokenType::kPunct, ",")) return Error("expected ','");
      Result<PatternNode> rhs = ParseNode();
      if (!rhs.ok()) return rhs.status();
      if (!Accept(TokenType::kPunct, ")")) return Error("expected ')'");
      auto node = std::make_unique<FilterExpr>();
      node->op = FilterOp::kContains;
      node->lhs_node = std::move(lhs).value();
      node->rhs_node = std::move(rhs).value();
      return node;
    }
    // Comparison: node op node.
    Result<PatternNode> lhs = ParseNode();
    if (!lhs.ok()) return lhs.status();
    const Token& op_tok = Peek();
    FilterOp op;
    if (op_tok.Is(TokenType::kPunct, "=")) {
      op = FilterOp::kEq;
    } else if (op_tok.Is(TokenType::kPunct, "!=")) {
      op = FilterOp::kNe;
    } else if (op_tok.Is(TokenType::kPunct, "<")) {
      op = FilterOp::kLt;
    } else if (op_tok.Is(TokenType::kPunct, "<=")) {
      op = FilterOp::kLe;
    } else if (op_tok.Is(TokenType::kPunct, ">")) {
      op = FilterOp::kGt;
    } else if (op_tok.Is(TokenType::kPunct, ">=")) {
      op = FilterOp::kGe;
    } else {
      return Error("expected comparison operator");
    }
    Next();
    Result<PatternNode> rhs = ParseNode();
    if (!rhs.ok()) return rhs.status();
    auto node = std::make_unique<FilterExpr>();
    node->op = op;
    node->lhs_node = std::move(lhs).value();
    node->rhs_node = std::move(rhs).value();
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, std::string> prefixes_;
};

#undef ALEX_RETURN_IF_ERROR_R

}  // namespace

Result<Query> ParseQuery(std::string_view query_text) {
  Result<std::vector<Token>> tokens = Tokenize(query_text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace alex::sparql
