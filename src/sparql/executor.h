// Query execution over a single TripleStore.
//
// Two engines share one entry point:
//
//   * kCompiled (default): compiles the query to TermId space once
//     (sparql/compiler.h) — constants pre-resolved, variables in dense
//     slots, patterns ordered by estimated cardinality — then enumerates
//     solutions over lazy index cursors (rdf::MatchCursor) with bindings in
//     a flat TermId array. FILTERs run as id-space bitmaps where possible.
//   * kLegacy: the original backtracking matcher over string-keyed
//     bindings, kept as the differential-testing oracle.
//
// Both engines produce the same row multiset; enumeration ORDER may differ
// between them (they join in different orders), so order-sensitive callers
// must use ORDER BY.
#ifndef ALEX_SPARQL_EXECUTOR_H_
#define ALEX_SPARQL_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "rdf/triple_store.h"
#include "sparql/algebra.h"
#include "sparql/compiler.h"

namespace alex::sparql {

enum class ExecEngine {
  kCompiled,  // TermId-space executor over compiled plans
  kLegacy,    // original term-space backtracking matcher (oracle)
};

struct ExecuteOptions {
  // Hard cap on produced rows before projection (safety valve).
  size_t max_rows = 1000000;
  ExecEngine engine = ExecEngine::kCompiled;
  // Optional dataset statistics forwarded to the compiler for join
  // ordering (compiled engine only).
  const rdf::DatasetStats* stats = nullptr;
  // Optional precompiled plan to reuse (compiled engine only). Must have
  // been compiled from exactly this query and store.
  const CompiledQuery* plan = nullptr;
};

// Runs `query` against `store` and returns the projected solutions.
// Handles UNION alternatives, OPTIONAL groups (left outer join), DISTINCT,
// ORDER BY, OFFSET, and LIMIT.
Result<std::vector<Binding>> Execute(const Query& query,
                                     const rdf::TripleStore& store,
                                     const ExecuteOptions& options = {});

// Evaluates an ASK query: true iff at least one solution exists.
Result<bool> Ask(const Query& query, const rdf::TripleStore& store,
                 const ExecuteOptions& options = {});

// Projects `binding` onto the query's select list (all variables when
// SELECT *).
Binding Project(const Query& query, const Binding& binding);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_EXECUTOR_H_
