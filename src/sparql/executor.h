// Query execution over a single TripleStore.
//
// Three engines share one entry point:
//
//   * kPlanned (default): compiles the query to TermId space
//     (sparql/compiler.h) and runs the pipelined physical operator tree the
//     bottom-up DP plan generator picked (sparql/plangen.h): ordered index
//     scans, merge / hash / index-lookup joins, aggregated scans, and
//     plan-placed filters, all pull-based over a flat register file.
//   * kGreedy: the same compiled representation, enumerated pattern-at-a-
//     time in the greedy statistics-driven join order (the former default;
//     kept as a differential oracle and as the fallback for groups the plan
//     generator declines).
//   * kLegacy: the original backtracking matcher over string-keyed
//     bindings, the independent term-space oracle.
//
// All engines produce the same row multiset; enumeration ORDER may differ
// between them (they join in different orders), so order-sensitive callers
// must use ORDER BY. GROUP BY aggregation for the compiled engines runs
// entirely in TermId space; only group keys and winning MIN/MAX terms are
// decoded through the dictionary.
#ifndef ALEX_SPARQL_EXECUTOR_H_
#define ALEX_SPARQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/triple_store.h"
#include "sparql/algebra.h"
#include "sparql/compiler.h"

namespace alex::sparql {

enum class ExecutorKind {
  kPlanned,  // physical operator trees from the DP plan generator
  kGreedy,   // greedy pattern-at-a-time compiled enumeration (oracle)
  kLegacy,   // original term-space backtracking matcher (oracle)
};

struct ExecuteOptions {
  // Hard cap on produced rows before projection (safety valve).
  size_t max_rows = 1000000;
  ExecutorKind engine = ExecutorKind::kPlanned;
  // Optional dataset statistics forwarded to the compiler for join
  // ordering and the plan generator's cost model (compiled engines only).
  const rdf::DatasetStats* stats = nullptr;
  // Optional precompiled plan to reuse (compiled engines only). Must have
  // been compiled from exactly this query and store.
  const CompiledQuery* plan = nullptr;
};

// Runs `query` against `store` and returns the projected solutions.
// Handles UNION alternatives, OPTIONAL groups (left outer join), DISTINCT,
// GROUP BY / aggregates, ORDER BY, OFFSET, and LIMIT.
Result<std::vector<Binding>> Execute(const Query& query,
                                     const rdf::TripleStore& store,
                                     const ExecuteOptions& options = {});

// Evaluates an ASK query: true iff at least one solution exists.
Result<bool> Ask(const Query& query, const rdf::TripleStore& store,
                 const ExecuteOptions& options = {});

// Projects `binding` onto the query's select list (all variables when
// SELECT *).
Binding Project(const Query& query, const Binding& binding);

// Compiles and executes `query` with the planned engine and renders every
// alternative's operator tree with per-operator cost / cardinality
// estimates next to the rows each operator actually produced.
Result<std::string> Explain(const Query& query, const rdf::TripleStore& store,
                            const ExecuteOptions& options = {});

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_EXECUTOR_H_
