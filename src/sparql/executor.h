// Basic-graph-pattern executor over a single TripleStore.
//
// The executor performs a backtracking join: at each step it picks the
// remaining pattern with the fewest unbound variables (greedy selectivity
// ordering), matches it against the store, extends the binding, and
// recurses. FILTERs are applied as soon as all of their variables are bound.
#ifndef ALEX_SPARQL_EXECUTOR_H_
#define ALEX_SPARQL_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "rdf/triple_store.h"
#include "sparql/algebra.h"

namespace alex::sparql {

struct ExecuteOptions {
  // Hard cap on produced rows before projection (safety valve).
  size_t max_rows = 1000000;
};

// Runs `query` against `store` and returns the projected solutions.
// Handles UNION alternatives, OPTIONAL groups (left outer join), DISTINCT,
// ORDER BY, OFFSET, and LIMIT.
Result<std::vector<Binding>> Execute(const Query& query,
                                     const rdf::TripleStore& store,
                                     const ExecuteOptions& options = {});

// Evaluates an ASK query: true iff at least one solution exists.
Result<bool> Ask(const Query& query, const rdf::TripleStore& store,
                 const ExecuteOptions& options = {});

// Projects `binding` onto the query's select list (all variables when
// SELECT *).
Binding Project(const Query& query, const Binding& binding);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_EXECUTOR_H_
