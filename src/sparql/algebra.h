// Query algebra for the SPARQL subset: basic graph patterns, simple filter
// expressions, projection, DISTINCT and LIMIT.
#ifndef ALEX_SPARQL_ALGEBRA_H_
#define ALEX_SPARQL_ALGEBRA_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace alex::sparql {

// A pattern position: either a variable name or a concrete term.
struct PatternNode {
  static PatternNode Var(std::string name) {
    PatternNode n;
    n.is_variable = true;
    n.variable = std::move(name);
    return n;
  }
  static PatternNode Const(rdf::Term term) {
    PatternNode n;
    n.is_variable = false;
    n.term = std::move(term);
    return n;
  }

  bool is_variable = false;
  std::string variable;  // valid iff is_variable
  rdf::Term term;        // valid iff !is_variable

  std::string ToString() const;
};

struct TriplePattern {
  PatternNode subject;
  PatternNode predicate;
  PatternNode object;

  // Number of variable positions given the set of already-bound variables;
  // used for join ordering (most selective first).
  int UnboundCount(const std::map<std::string, rdf::Term>& bound) const;

  std::string ToString() const;
};

// Filter expression tree.
enum class FilterOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kContains,  // CONTAINS(lhs, rhs) substring test, case-insensitive
};

struct FilterExpr {
  FilterOp op = FilterOp::kEq;
  // Comparison/contains leaves use lhs_node/rhs_node; logical nodes use
  // children (kNot uses only children[0]).
  std::optional<PatternNode> lhs_node;
  std::optional<PatternNode> rhs_node;
  std::vector<std::unique_ptr<FilterExpr>> children;
};

// Ordering key for ORDER BY.
struct OrderKey {
  std::string variable;
  bool descending = false;
};

// Aggregate projection, e.g. `(COUNT(?x) AS ?n)`.
struct Aggregate {
  enum class Kind { kCount, kSum, kAvg, kMin, kMax };
  Kind kind = Kind::kCount;
  // Aggregated variable; empty means `*` (COUNT only).
  std::string variable;
  // Output variable name (the `AS ?name` part).
  std::string as;
};

// Printable name ("COUNT", ...).
const char* AggregateKindName(Aggregate::Kind kind);

// A SELECT or ASK query.
//
// UNION is normalized at parse time into `alternatives`: disjunctive
// normal form, one pattern list per branch combination. `patterns` is
// always alternative 0 (the only one for union-free queries) so simple
// callers can ignore unions entirely.
struct Query {
  bool is_ask = false;               // ASK WHERE { ... }
  bool distinct = false;
  bool select_all = false;           // SELECT *
  std::vector<std::string> select;   // projected variable names
  // Aggregate projections; when non-empty the query is an aggregation and
  // `select` holds the GROUP BY keys that are also projected.
  std::vector<Aggregate> aggregates;
  std::vector<std::string> group_by;
  std::vector<TriplePattern> patterns;
  // Additional UNION branches beyond `patterns` (usually empty).
  std::vector<std::vector<TriplePattern>> more_alternatives;
  // OPTIONAL groups: left-outer-joined after the required patterns match.
  std::vector<std::vector<TriplePattern>> optionals;
  std::vector<std::unique_ptr<FilterExpr>> filters;
  std::vector<OrderKey> order_by;
  std::optional<size_t> limit;
  size_t offset = 0;

  // All pattern alternatives including `patterns` itself.
  std::vector<const std::vector<TriplePattern>*> Alternatives() const;

  std::string ToString() const;
};

// A solution: variable name -> bound term.
using Binding = std::map<std::string, rdf::Term>;

// Evaluates `expr` under `binding`. Unbound variables make comparisons
// false. Numeric comparisons are used when both sides parse as numbers.
bool EvalFilter(const FilterExpr& expr, const Binding& binding);

// Three-way comparison of two solutions under ORDER BY `keys`: numeric when
// both values parse as numbers, lexical otherwise; unbound sorts first.
int CompareBindingsForOrder(const Binding& a, const Binding& b,
                            const std::vector<OrderKey>& keys);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_ALGEBRA_H_
