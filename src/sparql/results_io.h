// Serialization of SPARQL query results in the W3C SPARQL 1.1 formats:
// CSV, TSV (Turtle-style terms), and the JSON results format. These are the
// interchange formats downstream tooling expects from a SPARQL endpoint.
#ifndef ALEX_SPARQL_RESULTS_IO_H_
#define ALEX_SPARQL_RESULTS_IO_H_

#include <string>
#include <vector>

#include "sparql/algebra.h"

namespace alex::sparql {

// The variables to emit, in order: the query's projection when explicit,
// otherwise the sorted union of the bound variables across `rows`.
std::vector<std::string> ResultVariables(const Query& query,
                                         const std::vector<Binding>& rows);

// SPARQL 1.1 Query Results CSV: header row of variable names, plain values
// (RFC 4180 quoting), unbound cells empty.
std::string ResultsToCsv(const std::vector<Binding>& rows,
                         const std::vector<std::string>& variables);

// SPARQL 1.1 Query Results TSV: header `?var` names, terms in Turtle/
// N-Triples syntax.
std::string ResultsToTsv(const std::vector<Binding>& rows,
                         const std::vector<std::string>& variables);

// SPARQL 1.1 Query Results JSON:
// {"head":{"vars":[...]},"results":{"bindings":[...]}}
std::string ResultsToJson(const std::vector<Binding>& rows,
                          const std::vector<std::string>& variables);

// ASK result in the JSON format: {"head":{},"boolean":true}.
std::string AskResultToJson(bool value);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_RESULTS_IO_H_
