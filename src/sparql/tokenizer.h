// Tokenizer for the SPARQL subset supported by this library.
//
// Recognized: keywords (SELECT, DISTINCT, WHERE, FILTER, PREFIX, LIMIT, ASK),
// variables (?name), IRIs (<...>), prefixed names (ex:name), string literals
// with language/datatype suffixes, numbers, punctuation and comparison /
// boolean operators.
#ifndef ALEX_SPARQL_TOKENIZER_H_
#define ALEX_SPARQL_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace alex::sparql {

enum class TokenType {
  kKeyword,     // SELECT, WHERE, ... (normalized to upper case)
  kVariable,    // ?x -> text "x"
  kIri,         // <http://...> -> text without angle brackets
  kPrefixedName,  // ex:name -> text "ex:name"
  kString,      // "..." -> unescaped text
  kNumber,      // 42, 3.14 -> lexical text
  kPunct,       // { } ( ) . , ; * = != < > <= >= && || !
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  size_t offset = 0;  // byte offset in the query, for error messages

  bool Is(TokenType t, std::string_view s) const {
    return type == t && text == s;
  }
};

// Tokenizes `query`. The result always ends with a kEof token.
Result<std::vector<Token>> Tokenize(std::string_view query);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_TOKENIZER_H_
