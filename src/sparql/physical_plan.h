// Physical operator trees over TermId space: the data model shared by the
// plan generator (sparql/plangen.h), the compiler (which attaches one plan
// per basic graph pattern to a CompiledQuery), and the runtime operators
// (sparql/operators.h).
//
// A plan is an arena of PlanOp nodes plus a root index. Execution is
// register-based: every (pattern, position) pair that holds a variable gets
// its own register, all operators read and write one shared TermId register
// file, and joins enforce equality between the registers of the two sides
// instead of sharing a slot. At the root, `slot_reg` maps each variable
// slot to its representative register so the executor can copy the row into
// the ordinary slot array and reuse the OPTIONAL / projection / ORDER BY
// machinery unchanged.
#ifndef ALEX_SPARQL_PHYSICAL_PLAN_H_
#define ALEX_SPARQL_PHYSICAL_PLAN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "rdf/triple_store.h"

namespace alex::sparql {

// Dense variable slot; an index into the executor's binding array.
using VarSlot = uint32_t;
inline constexpr VarSlot kNoSlot = 0xffffffffu;

// A register in the physical plan's register file.
using PlanReg = uint32_t;
inline constexpr PlanReg kNoReg = 0xffffffffu;

enum class PlanOpKind : uint8_t {
  kIndexScan,            // one ordered index range (rdf::ScanOrdered)
  kAggregatedIndexScan,  // index range with duplicate runs skipped
  kMergeJoin,            // both inputs sorted on the join variable
  kHashJoin,             // build right, probe left (left order preserved)
  kIndexLookupJoin,      // stream left, point-probe the right pattern
  kFilter,               // compiled FILTER over the child's registers
};

// How a scan (or the probed pattern of an IndexLookupJoin) treats one
// triple position.
enum class ScanPos : uint8_t {
  kConst,  // constant id from the compiled pattern; part of the range
  kBind,   // free: the triple's value is written into reg
  kProbe,  // bound from reg (a register the left input wrote); in-range
  kCheck,  // residual: triple value must equal reg (repeated variable)
  kElim,   // eliminated by an AggregatedIndexScan (trailing run-skip)
};

struct PlanOp {
  PlanOpKind kind = PlanOpKind::kIndexScan;

  // -- scans and the right side of kIndexLookupJoin --
  int pattern_index = -1;  // into CompiledGroup::patterns
  rdf::IndexOrder index_order = rdf::IndexOrder::kSpo;
  ScanPos pos[3] = {ScanPos::kConst, ScanPos::kConst, ScanPos::kConst};
  PlanReg pos_reg[3] = {kNoReg, kNoReg, kNoReg};  // for kBind/kProbe/kCheck

  // -- children (indices into PhysicalPlan::ops; -1 = none) --
  int left = -1;  // also the only child of kFilter / kIndexLookupJoin
  int right = -1;

  // -- joins --
  // Register equalities enforced between the two sides; for kMergeJoin,
  // eq[0] is the sorted join key both inputs are ordered on.
  std::vector<std::pair<PlanReg, PlanReg>> eq;
  // kIndexLookupJoin: stop at the first probe match (existence is enough:
  // the probed pattern binds nothing anyone reads and multiplicity is
  // irrelevant to the query).
  bool semi = false;

  // -- kFilter --
  int filter_index = -1;            // into CompiledQuery::filters
  std::vector<PlanReg> filter_regs;  // parallel to that filter's slots

  // -- metadata --
  // Slot whose register the output is (non-strictly) sorted on; kNoSlot if
  // the output carries no usable order.
  VarSlot order_slot = kNoSlot;
  // Registers live at this operator's output, ascending. Joins buffer /
  // hash exactly these for their build side.
  std::vector<PlanReg> out_regs;
  double est_rows = 0.0;  // cardinality estimate
  double est_cost = 0.0;  // cumulative cost estimate
};

struct PhysicalPlan {
  std::vector<PlanOp> ops;  // arena; parents appear after their children
  // Root operator, or -1 when the plan generator declined (empty group,
  // too many patterns): the executor then falls back to the greedy
  // pattern-at-a-time enumeration for this group.
  int root = -1;
  PlanReg num_regs = 0;
  // slot -> representative register at the root (kNoReg for slots this
  // group never binds).
  std::vector<PlanReg> slot_reg;
  // Bitmask over CompiledQuery::filters (indices < 64) that the plan
  // already enforces; seeds the executor's filters-passed mask.
  uint64_t applied_filters = 0;
};

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_PHYSICAL_PLAN_H_
