// Recursive-descent parser for the SPARQL subset.
//
// Grammar (informal):
//   query     := prefix* SELECT [DISTINCT] (* | var+) WHERE { block } [LIMIT n]
//   prefix    := PREFIX pname: <iri>
//   block     := (triple | filter)*
//   triple    := node node node ('.' | before '}')   with ';' and ','
//                continuation for shared subjects / predicates
//   filter    := FILTER ( expr )
//   expr      := or-expr with && || ! () comparisons and CONTAINS(a, b)
//   node      := ?var | <iri> | pname:local | "literal" | number | a
#ifndef ALEX_SPARQL_PARSER_H_
#define ALEX_SPARQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sparql/algebra.h"

namespace alex::sparql {

// Parses `query_text` into a Query. Returns a parse error with an offset
// hint on malformed input.
Result<Query> ParseQuery(std::string_view query_text);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_PARSER_H_
