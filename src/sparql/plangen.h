// Bottom-up dynamic-programming plan generation for one basic graph
// pattern, in the RDF-3X style: enumerate connected subsets of the query
// graph, keep the cheapest subplan per interesting order (the variable the
// subplan's output is sorted on), and pick join methods by a cost model fed
// by rdf::DatasetStats and exact index-range counts.
//
// Leaf plans are ordered index scans — one candidate per index whose
// constant positions form a prefix — plus AggregatedIndexScan variants that
// skip duplicate runs when trailing free positions are provably
// unobservable (DISTINCT / ASK queries where the variable occurs nowhere
// else). Joins: MergeJoin when both inputs arrive sorted on a shared
// variable, HashJoin as the general fallback (also covering cross products
// of disconnected components), and IndexLookupJoin, which streams the left
// input and point-probes one pattern — the strategy space of the greedy
// executor, so a planned tree never structurally loses to it. Applicable
// FILTERs are placed at the lowest covering operator after the join order
// is fixed.
#ifndef ALEX_SPARQL_PLANGEN_H_
#define ALEX_SPARQL_PLANGEN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "rdf/dataset_stats.h"
#include "sparql/compiler.h"
#include "sparql/physical_plan.h"

namespace alex::sparql {

// Builds the physical plan for compiled.alternatives[alternative]. Returns
// a plan with root == -1 (greedy fallback) for empty or unmatchable groups
// and for groups larger than the DP size cap.
PhysicalPlan BuildPhysicalPlan(const CompiledQuery& compiled,
                               size_t alternative,
                               const rdf::DatasetStats* stats);

// Human-readable operator tree with per-operator cardinality and cost
// estimates. `actual_rows`, when given, is parallel to plan.ops and holds
// rows actually produced per operator (from an instrumented execution).
std::string RenderPlan(const PhysicalPlan& plan, const CompiledQuery& compiled,
                       size_t alternative,
                       const std::vector<size_t>* actual_rows = nullptr);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_PLANGEN_H_
