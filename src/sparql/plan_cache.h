// Caches parsed queries and compiled physical plans keyed by query text.
//
// The episode loop and the federated engine re-issue the same query texts
// epoch after epoch; parsing and plan generation are deterministic, so both
// can be done once and reused. A cached plan carries the DatasetStats
// snapshot it was costed with: GetPlan() recompiles only when the store
// changed identity or fresh statistics drifted past the threshold
// (rdf::Drift), so steady link churn keeps hitting the cache while a bulk
// load invalidates it.
//
// Returned pointers stay valid until Clear() or destruction (entries are
// heap-allocated and never evicted). All methods are thread-safe, and the
// steady-state path — the entry exists and is still valid — takes only a
// SHARED lock, so the many query streams of a serving epoch never serialize
// on each other just to reuse a parse. Only a miss or a drift-forced
// recompile takes the exclusive lock. Because entries are never evicted and
// a parsed Query is never mutated after creation, a pointer handed out
// under the shared lock stays stable. (A *plan* pointer can be recompiled
// in place by a later drift-invalidating GetPlan; callers that share a
// PlanCache across threads must keep store + stats fixed while readers are
// in flight — exactly what a serving epoch guarantees.) The cache never
// changes *what* a query returns, only whether parse/compile work is
// repeated, so cached and uncached runs are bitwise identical.
#ifndef ALEX_SPARQL_PLAN_CACHE_H_
#define ALEX_SPARQL_PLAN_CACHE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "rdf/dataset_stats.h"
#include "rdf/triple_store.h"
#include "sparql/algebra.h"
#include "sparql/compiler.h"

namespace alex::sparql {

class PlanCache {
 public:
  struct Stats {
    size_t parse_hits = 0;
    size_t parse_misses = 0;
    size_t plan_hits = 0;
    size_t plan_misses = 0;
    size_t invalidations = 0;  // recompiles forced by store change / drift
  };

  // `drift_threshold`: a cached plan is recompiled when Drift(snapshot,
  // fresh stats) exceeds this fraction (default 20% relative change).
  explicit PlanCache(double drift_threshold = 0.2)
      : drift_threshold_(drift_threshold) {}

  // Returns the parsed form of `text`, parsing at most once per distinct
  // text. Parse errors are cached too (repeating a bad query is cheap).
  Result<const Query*> GetParsed(const std::string& text);

  // Returns a compiled plan (with physical plans built) for `text` against
  // `store`, recompiling when none exists, the store changed, or `stats`
  // drifted past the threshold since the plan was costed. `stats` may be
  // null (plans then cost from live CountMatches probes and never
  // drift-invalidate).
  Result<const CompiledQuery*> GetPlan(const std::string& text,
                                       const rdf::TripleStore& store,
                                       const rdf::DatasetStats* stats);

  // Returns counters accumulated since the last TakeStats() and resets
  // them.
  Stats TakeStats();
  // Snapshot of the counters without resetting.
  Stats stats() const;

  // Drops every entry (borrowed pointers become dangling).
  void Clear();

  size_t size() const;
  double drift_threshold() const { return drift_threshold_; }

 private:
  struct Entry {
    Status parse_status;  // OK iff `query` is valid
    Query query;
    bool has_plan = false;
    CompiledQuery plan;
    const rdf::TripleStore* store = nullptr;
    // Store mutation counter at compile time: live triple ingest mutates a
    // store in place, so pointer identity alone would serve plans costed
    // against data that no longer exists.
    uint64_t store_generation = 0;
    bool has_snapshot = false;
    rdf::DatasetStats snapshot;
  };

  // Finds or creates (and parses) the entry for `text`; mu_ must be held
  // exclusively.
  Entry* GetEntryLocked(const std::string& text);
  // True when the entry's plan can be served as-is for (store, stats).
  bool PlanIsFresh(const Entry& entry, const rdf::TripleStore& store,
                   const rdf::DatasetStats* stats) const;

  mutable std::shared_mutex mu_;
  const double drift_threshold_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
  // Counters are atomics so the shared-lock fast path can bump them without
  // upgrading to the exclusive lock.
  std::atomic<size_t> parse_hits_{0};
  std::atomic<size_t> parse_misses_{0};
  std::atomic<size_t> plan_hits_{0};
  std::atomic<size_t> plan_misses_{0};
  std::atomic<size_t> invalidations_{0};
};

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_PLAN_CACHE_H_
