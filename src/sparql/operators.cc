#include "sparql/operators.h"

#include <functional>
#include <unordered_map>
#include <utility>

namespace alex::sparql {
namespace {

using rdf::TermId;
using rdf::TermPattern;
using rdf::Triple;

// FNV-1a over an id tuple (hash-join keys).
struct IdKeyHash {
  size_t operator()(const std::vector<TermId>& row) const {
    size_t h = 14695981039346656037ull;
    for (TermId id : row) {
      h ^= id;
      h *= 1099511628211ull;
    }
    return h;
  }
};

// Applies the kBind / kCheck positions of `t` to the registers; false when
// a residual equality check fails.
inline bool BindTriple(const PlanOp& op, const Triple& t,
                       std::vector<TermId>& regs) {
  const TermId vals[3] = {t.subject, t.predicate, t.object};
  for (int k = 0; k < 3; ++k) {
    if (op.pos[k] == ScanPos::kBind) {
      regs[op.pos_reg[k]] = vals[k];
    } else if (op.pos[k] == ScanPos::kCheck &&
               regs[op.pos_reg[k]] != vals[k]) {
      return false;
    }
  }
  return true;
}

class ScanOp : public Operator {
 public:
  ScanOp(const PlanOp& op, const CompiledGroup& group,
         const rdf::TripleStore& store, std::vector<TermId>& regs)
      : op_(op), store_(store), regs_(regs) {
    const CompiledPattern& pattern = group.patterns[op.pattern_index];
    const CompiledNode* nodes[3] = {&pattern.subject, &pattern.predicate,
                                    &pattern.object};
    for (int k = 0; k < 3; ++k) {
      if (op_.pos[k] == ScanPos::kConst) const_[k] = nodes[k]->id;
    }
  }

  void Open() override {
    produced_ = 0;
    cursor_ = store_.ScanOrdered(op_.index_order, const_[0], const_[1],
                                 const_[2]);
  }

  bool Next() override {
    while (const Triple* t = cursor_.Next()) {
      if (BindTriple(op_, *t, regs_)) {
        ++produced_;
        return true;
      }
    }
    return false;
  }

 private:
  const PlanOp& op_;
  const rdf::TripleStore& store_;
  std::vector<TermId>& regs_;
  TermPattern const_[3];
  rdf::MatchCursor cursor_;
};

// Scan that skips duplicate runs: positions marked kElim form a suffix of
// the index order, so triples agreeing on every emitted position are
// adjacent and only the first of each run is produced.
class AggregatedScanOp : public Operator {
 public:
  AggregatedScanOp(const PlanOp& op, const CompiledGroup& group,
                   const rdf::TripleStore& store, std::vector<TermId>& regs)
      : op_(op), store_(store), regs_(regs) {
    const CompiledPattern& pattern = group.patterns[op.pattern_index];
    const CompiledNode* nodes[3] = {&pattern.subject, &pattern.predicate,
                                    &pattern.object};
    for (int k = 0; k < 3; ++k) {
      if (op_.pos[k] == ScanPos::kConst) const_[k] = nodes[k]->id;
      emitted_[k] = op_.pos[k] == ScanPos::kBind ||
                    op_.pos[k] == ScanPos::kCheck;
    }
  }

  void Open() override {
    produced_ = 0;
    have_prev_ = false;
    cursor_ = store_.ScanOrdered(op_.index_order, const_[0], const_[1],
                                 const_[2]);
  }

  bool Next() override {
    while (const Triple* t = cursor_.Next()) {
      const TermId vals[3] = {t->subject, t->predicate, t->object};
      if (have_prev_) {
        bool duplicate = true;
        for (int k = 0; k < 3; ++k) {
          if (emitted_[k] && vals[k] != prev_[k]) {
            duplicate = false;
            break;
          }
        }
        if (duplicate) continue;
      }
      for (int k = 0; k < 3; ++k) prev_[k] = vals[k];
      have_prev_ = true;
      if (BindTriple(op_, *t, regs_)) {
        ++produced_;
        return true;
      }
    }
    return false;
  }

 private:
  const PlanOp& op_;
  const rdf::TripleStore& store_;
  std::vector<TermId>& regs_;
  TermPattern const_[3];
  bool emitted_[3] = {false, false, false};
  rdf::MatchCursor cursor_;
  TermId prev_[3] = {0, 0, 0};
  bool have_prev_ = false;
};

// Both inputs sorted (by TermId) on the key registers eq[0]; classic merge
// with the right-hand key block buffered so each left row of the key sees
// every right row. Left and right write disjoint registers, so the current
// left row survives while the right side advances.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(const PlanOp& op, Operator* left, Operator* right,
              const std::vector<PlanReg>& right_out,
              std::vector<TermId>& regs)
      : op_(op),
        left_(left),
        right_(right),
        right_out_(right_out),
        regs_(regs),
        lkey_(op.eq[0].first),
        rkey_(op.eq[0].second) {}

  void Open() override {
    produced_ = 0;
    left_->Open();
    right_->Open();
    left_valid_ = left_->Next();
    right_valid_ = right_->Next();
    block_.clear();
    block_rows_ = 0;
    block_pos_ = 0;
    replaying_ = false;
    pending_valid_ = false;
  }

  bool Next() override {
    for (;;) {
      if (replaying_) {
        while (block_pos_ < block_rows_) {
          LoadBlockRow(block_pos_++);
          if (ExtraEq()) {
            ++produced_;
            return true;
          }
        }
        // Current left row exhausted the block; the next left row may
        // still carry the block key.
        replaying_ = false;
        left_valid_ = left_->Next();
        if (left_valid_ && regs_[lkey_] == block_key_) {
          block_pos_ = 0;
          replaying_ = true;
          continue;
        }
        // Replay overwrote the right registers; restore the right row
        // fetched past the block before merging resumes.
        if (pending_valid_) RestorePending();
      }
      if (!left_valid_ || !right_valid_) return false;
      if (regs_[lkey_] < regs_[rkey_]) {
        left_valid_ = left_->Next();
        continue;
      }
      if (regs_[rkey_] < regs_[lkey_]) {
        right_valid_ = right_->Next();
        pending_valid_ = false;
        continue;
      }
      block_key_ = regs_[rkey_];
      block_.clear();
      block_rows_ = 0;
      do {
        SaveBlockRow();
        ++block_rows_;
        right_valid_ = right_->Next();
      } while (right_valid_ && regs_[rkey_] == block_key_);
      if (right_valid_) {
        SavePending();
      } else {
        pending_valid_ = false;
      }
      block_pos_ = 0;
      replaying_ = true;
    }
  }

 private:
  bool ExtraEq() const {
    for (size_t i = 1; i < op_.eq.size(); ++i) {
      if (regs_[op_.eq[i].first] != regs_[op_.eq[i].second]) return false;
    }
    return true;
  }
  void SaveBlockRow() {
    for (PlanReg r : right_out_) block_.push_back(regs_[r]);
  }
  void LoadBlockRow(size_t row) {
    size_t base = row * right_out_.size();
    for (size_t i = 0; i < right_out_.size(); ++i) {
      regs_[right_out_[i]] = block_[base + i];
    }
  }
  void SavePending() {
    pending_.assign(right_out_.size(), 0);
    for (size_t i = 0; i < right_out_.size(); ++i) {
      pending_[i] = regs_[right_out_[i]];
    }
    pending_valid_ = true;
  }
  void RestorePending() {
    for (size_t i = 0; i < right_out_.size(); ++i) {
      regs_[right_out_[i]] = pending_[i];
    }
    pending_valid_ = false;
  }

  const PlanOp& op_;
  Operator* left_;
  Operator* right_;
  const std::vector<PlanReg>& right_out_;
  std::vector<TermId>& regs_;
  PlanReg lkey_, rkey_;

  bool left_valid_ = false, right_valid_ = false;
  TermId block_key_ = 0;
  std::vector<TermId> block_;    // flattened right rows of the current key
  size_t block_rows_ = 0, block_pos_ = 0;
  bool replaying_ = false;
  std::vector<TermId> pending_;  // right row fetched past the block
  bool pending_valid_ = false;
};

// Builds a hash table over the right input, then streams the left input in
// order (the probe order is the output order). An empty key list degrades
// to the cross product of disconnected components.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(const PlanOp& op, Operator* left, Operator* right,
             const std::vector<PlanReg>& right_out, std::vector<TermId>& regs)
      : op_(op),
        left_(left),
        right_(right),
        right_out_(right_out),
        regs_(regs) {}

  void Open() override {
    produced_ = 0;
    rows_.clear();
    table_.clear();
    build_rows_ = 0;
    key_scratch_.assign(op_.eq.size(), 0);
    right_->Open();
    while (right_->Next()) {
      for (size_t i = 0; i < op_.eq.size(); ++i) {
        key_scratch_[i] = regs_[op_.eq[i].second];
      }
      table_[key_scratch_].push_back(build_rows_);
      for (PlanReg r : right_out_) rows_.push_back(regs_[r]);
      ++build_rows_;
    }
    left_->Open();
    matches_ = nullptr;
    match_pos_ = 0;
  }

  bool Next() override {
    for (;;) {
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        size_t base = (*matches_)[match_pos_++] * right_out_.size();
        for (size_t i = 0; i < right_out_.size(); ++i) {
          regs_[right_out_[i]] = rows_[base + i];
        }
        ++produced_;
        return true;
      }
      matches_ = nullptr;
      if (!left_->Next()) return false;
      for (size_t i = 0; i < op_.eq.size(); ++i) {
        key_scratch_[i] = regs_[op_.eq[i].first];
      }
      auto it = table_.find(key_scratch_);
      if (it != table_.end()) {
        matches_ = &it->second;
        match_pos_ = 0;
      }
    }
  }

 private:
  const PlanOp& op_;
  Operator* left_;
  Operator* right_;
  const std::vector<PlanReg>& right_out_;
  std::vector<TermId>& regs_;

  std::vector<TermId> rows_;  // flattened build rows
  size_t build_rows_ = 0;
  std::unordered_map<std::vector<TermId>, std::vector<size_t>, IdKeyHash>
      table_;
  std::vector<TermId> key_scratch_;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

// Streams the left input and point-probes the right pattern: kProbe
// positions read left registers, kBind positions bind the match. With
// `semi`, one match per left row suffices (pure existence check).
class IndexLookupJoinOp : public Operator {
 public:
  IndexLookupJoinOp(const PlanOp& op, Operator* left,
                    const CompiledGroup& group, const rdf::TripleStore& store,
                    std::vector<TermId>& regs)
      : op_(op), left_(left), store_(store), regs_(regs) {
    const CompiledPattern& pattern = group.patterns[op.pattern_index];
    const CompiledNode* nodes[3] = {&pattern.subject, &pattern.predicate,
                                    &pattern.object};
    for (int k = 0; k < 3; ++k) {
      if (op_.pos[k] == ScanPos::kConst) const_[k] = nodes[k]->id;
    }
  }

  void Open() override {
    produced_ = 0;
    left_->Open();
    active_ = false;
  }

  bool Next() override {
    for (;;) {
      if (active_) {
        while (const Triple* t = cursor_.Next()) {
          if (BindTriple(op_, *t, regs_)) {
            if (op_.semi) active_ = false;
            ++produced_;
            return true;
          }
        }
        active_ = false;
      }
      if (!left_->Next()) return false;
      TermPattern probe[3];
      for (int k = 0; k < 3; ++k) {
        if (op_.pos[k] == ScanPos::kConst) {
          probe[k] = const_[k];
        } else if (op_.pos[k] == ScanPos::kProbe) {
          probe[k] = regs_[op_.pos_reg[k]];
        }
      }
      cursor_ = store_.Scan(probe[0], probe[1], probe[2]);
      active_ = true;
    }
  }

 private:
  const PlanOp& op_;
  Operator* left_;
  const rdf::TripleStore& store_;
  std::vector<TermId>& regs_;
  TermPattern const_[3];
  rdf::MatchCursor cursor_;
  bool active_ = false;
};

class RowFilterOp : public Operator {
 public:
  RowFilterOp(const PlanOp& op, Operator* child,
              const CompiledQuery& compiled, std::vector<TermId>& regs)
      : op_(op),
        child_(child),
        compiled_(compiled),
        dict_(compiled.store->dictionary()),
        regs_(regs) {}

  void Open() override {
    produced_ = 0;
    child_->Open();
  }

  bool Next() override {
    while (child_->Next()) {
      if (Pass()) {
        ++produced_;
        return true;
      }
    }
    return false;
  }

 private:
  bool Pass() const {
    const CompiledFilter& filter = compiled_.filters[op_.filter_index];
    if (!filter.bitmap.empty()) {
      return filter.bitmap[regs_[op_.filter_regs[0]]];
    }
    Binding binding;
    for (size_t i = 0; i < filter.slots.size(); ++i) {
      binding.emplace(compiled_.slot_names[filter.slots[i]],
                      dict_.term(regs_[op_.filter_regs[i]]));
    }
    return EvalFilter(*filter.expr, binding);
  }

  const PlanOp& op_;
  Operator* child_;
  const CompiledQuery& compiled_;
  const rdf::Dictionary& dict_;
  std::vector<TermId>& regs_;
};

}  // namespace

std::vector<size_t> OperatorTree::ProducedRows() const {
  std::vector<size_t> rows(ops.size(), 0);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i] != nullptr) rows[i] = ops[i]->produced();
  }
  return rows;
}

OperatorTree BuildOperatorTree(const PhysicalPlan& plan,
                               const CompiledQuery& compiled,
                               const CompiledGroup& group,
                               std::vector<rdf::TermId>* regs) {
  regs->assign(plan.num_regs, rdf::kInvalidTermId);
  OperatorTree tree;
  tree.ops.resize(plan.ops.size());
  const rdf::TripleStore& store = *compiled.store;
  std::function<Operator*(int)> build = [&](int index) -> Operator* {
    const PlanOp& op = plan.ops[index];
    Operator* left = op.left >= 0 ? build(op.left) : nullptr;
    Operator* right = op.right >= 0 ? build(op.right) : nullptr;
    std::unique_ptr<Operator> made;
    switch (op.kind) {
      case PlanOpKind::kIndexScan:
        made = std::make_unique<ScanOp>(op, group, store, *regs);
        break;
      case PlanOpKind::kAggregatedIndexScan:
        made = std::make_unique<AggregatedScanOp>(op, group, store, *regs);
        break;
      case PlanOpKind::kMergeJoin:
        made = std::make_unique<MergeJoinOp>(
            op, left, right, plan.ops[op.right].out_regs, *regs);
        break;
      case PlanOpKind::kHashJoin:
        made = std::make_unique<HashJoinOp>(
            op, left, right, plan.ops[op.right].out_regs, *regs);
        break;
      case PlanOpKind::kIndexLookupJoin:
        made = std::make_unique<IndexLookupJoinOp>(op, left, group, store,
                                                   *regs);
        break;
      case PlanOpKind::kFilter:
        made = std::make_unique<RowFilterOp>(op, left, compiled, *regs);
        break;
    }
    tree.ops[index] = std::move(made);
    return tree.ops[index].get();
  };
  tree.root = build(plan.root);
  return tree;
}

}  // namespace alex::sparql
