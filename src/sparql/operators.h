// Pull-based runtime operators for physical plans (sparql/physical_plan.h).
//
// All operators of one tree share a single TermId register file owned by
// the caller. Next() advances the operator to its next output row — the row
// *is* the current content of the registers the operator's out_regs name —
// and returns false when exhausted. Buffers (merge-join blocks, hash
// tables) are allocated once at Open() and reused, so the per-row path is
// allocation-free.
#ifndef ALEX_SPARQL_OPERATORS_H_
#define ALEX_SPARQL_OPERATORS_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "rdf/triple_store.h"
#include "sparql/compiler.h"
#include "sparql/physical_plan.h"

namespace alex::sparql {

class Operator {
 public:
  virtual ~Operator() = default;
  // Resets to the first row. Must be called before the first Next().
  virtual void Open() = 0;
  // Writes the next row into the shared registers; false when exhausted.
  virtual bool Next() = 0;

  // Rows this operator produced since Open() (explain instrumentation).
  size_t produced() const { return produced_; }

 protected:
  size_t produced_ = 0;
};

// The instantiated operators of one plan: `ops` is parallel to
// PhysicalPlan::ops (entries stay null for plan nodes of other candidate
// trees that compaction removed — after compaction every entry is live).
struct OperatorTree {
  std::vector<std::unique_ptr<Operator>> ops;
  Operator* root = nullptr;

  // produced() per plan-op index; for RenderPlan's actual_rows.
  std::vector<size_t> ProducedRows() const;
};

// Builds the operator tree for `plan` (root must be >= 0). `regs` is the
// shared register file, resized to plan.num_regs; it must outlive the tree.
OperatorTree BuildOperatorTree(const PhysicalPlan& plan,
                               const CompiledQuery& compiled,
                               const CompiledGroup& group,
                               std::vector<rdf::TermId>* regs);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_OPERATORS_H_
