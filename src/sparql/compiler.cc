#include "sparql/compiler.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "sparql/plangen.h"

namespace alex::sparql {
namespace {

using rdf::TermId;
using rdf::TermPattern;

// Assigns slots in deterministic first-appearance order over a fixed walk
// of the query, so slot numbering is independent of join ordering.
class SlotTable {
 public:
  VarSlot SlotOf(const std::string& name) {
    auto [it, inserted] = index_.try_emplace(name, names_.size());
    if (inserted) names_.push_back(name);
    return static_cast<VarSlot>(it->second);
  }

  VarSlot Find(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? kNoSlot : static_cast<VarSlot>(it->second);
  }

  std::vector<std::string> names_;

 private:
  std::unordered_map<std::string, size_t> index_;
};

CompiledNode CompileNode(const PatternNode& node, SlotTable* slots,
                         const rdf::TripleStore& store, bool* unmatchable) {
  CompiledNode out;
  if (node.is_variable) {
    out.is_variable = true;
    out.slot = slots->SlotOf(node.variable);
    return out;
  }
  if (std::optional<TermId> id = store.dictionary().Lookup(node.term)) {
    out.id = *id;
  } else {
    *unmatchable = true;  // constant the store has never seen
  }
  return out;
}

}  // namespace

double EstimatePatternRows(const CompiledPattern& pattern,
                           const std::vector<bool>& bound,
                           const rdf::TripleStore& store,
                           const rdf::DatasetStats* stats) {
  auto constant = [](const CompiledNode& node) -> TermPattern {
    if (node.is_variable) return std::nullopt;
    return node.id;
  };
  double rows = static_cast<double>(store.CountMatches(
      constant(pattern.subject), constant(pattern.predicate),
      constant(pattern.object)));

  const rdf::PredicateStats* pred_stats = nullptr;
  if (!pattern.predicate.is_variable && stats != nullptr) {
    pred_stats = stats->Find(pattern.predicate.id);
  }
  // Without statistics every bound variable still shrinks its pattern by a
  // nominal factor, which breaks ties toward joining connected patterns.
  constexpr double kDefaultShrink = 50.0;
  auto shrink_for = [&](const CompiledNode& node, bool subject_position,
                        bool predicate_position) -> double {
    if (!node.is_variable || node.slot >= bound.size() || !bound[node.slot]) {
      return 1.0;
    }
    if (predicate_position) {
      return stats != nullptr
                 ? std::max<double>(1.0, static_cast<double>(stats->predicates))
                 : kDefaultShrink;
    }
    if (pred_stats != nullptr) {
      return std::max<double>(
          1.0, static_cast<double>(subject_position
                                       ? pred_stats->distinct_subjects
                                       : pred_stats->distinct_objects));
    }
    if (stats != nullptr) {
      return std::max<double>(
          1.0, static_cast<double>(subject_position
                                       ? stats->subjects
                                       : stats->distinct_objects));
    }
    return kDefaultShrink;
  };
  rows /= shrink_for(pattern.subject, /*subject=*/true, /*predicate=*/false);
  rows /= shrink_for(pattern.predicate, /*subject=*/false, /*predicate=*/true);
  rows /= shrink_for(pattern.object, /*subject=*/false, /*predicate=*/false);
  return rows;
}

namespace {

// Greedily orders `patterns` by estimated cardinality: repeatedly pick the
// cheapest pattern under the slots bound so far (ties by original pattern
// index, so the order is deterministic). `pre_bound` holds slots bound
// outside the group (an OPTIONAL group starts with the required patterns'
// slots bound).
void OrderGroup(CompiledGroup* group, const std::vector<bool>& pre_bound,
                size_t num_slots, const rdf::TripleStore& store,
                const rdf::DatasetStats* stats) {
  std::vector<bool> bound = pre_bound;
  bound.resize(num_slots, false);
  std::vector<CompiledPattern> ordered;
  ordered.reserve(group->patterns.size());
  std::vector<bool> used(group->patterns.size(), false);
  for (size_t step = 0; step < group->patterns.size(); ++step) {
    size_t best = group->patterns.size();
    double best_rows = 0.0;
    for (size_t i = 0; i < group->patterns.size(); ++i) {
      if (used[i]) continue;
      double rows =
          EstimatePatternRows(group->patterns[i], bound, store, stats);
      if (best == group->patterns.size() || rows < best_rows) {
        best = i;
        best_rows = rows;
      }
    }
    used[best] = true;
    CompiledPattern chosen = group->patterns[best];
    chosen.estimated_rows = best_rows;
    for (const CompiledNode* node :
         {&chosen.subject, &chosen.predicate, &chosen.object}) {
      if (node->is_variable) bound[node->slot] = true;
    }
    ordered.push_back(chosen);
  }
  group->patterns = std::move(ordered);
}

CompiledGroup CompileGroup(const std::vector<TriplePattern>& patterns,
                           SlotTable* slots,
                           const rdf::TripleStore& store) {
  CompiledGroup group;
  group.patterns.reserve(patterns.size());
  for (const TriplePattern& pattern : patterns) {
    CompiledPattern compiled;
    compiled.subject =
        CompileNode(pattern.subject, slots, store, &group.unmatchable);
    compiled.predicate =
        CompileNode(pattern.predicate, slots, store, &group.unmatchable);
    compiled.object =
        CompileNode(pattern.object, slots, store, &group.unmatchable);
    group.patterns.push_back(compiled);
  }
  return group;
}

void CollectFilterSlots(const FilterExpr& expr, const SlotTable& slots,
                        std::vector<VarSlot>* out) {
  for (const auto& child : expr.children) {
    CollectFilterSlots(*child, slots, out);
  }
  for (const std::optional<PatternNode>* node : {&expr.lhs_node,
                                                 &expr.rhs_node}) {
    if (node->has_value() && (*node)->is_variable) {
      out->push_back(slots.Find((*node)->variable));
    }
  }
}

}  // namespace

CompiledQuery CompileQuery(const Query& query, const rdf::TripleStore& store,
                           const CompileOptions& options) {
  CompiledQuery compiled;
  compiled.query = &query;
  compiled.store = &store;

  SlotTable slots;
  // Pattern variables first (they are the ones bound during enumeration),
  // then every variable the query mentions elsewhere, so projection /
  // ordering / filters on never-bound variables still get a slot.
  for (const std::vector<TriplePattern>* patterns : query.Alternatives()) {
    compiled.alternatives.push_back(CompileGroup(*patterns, &slots, store));
  }
  for (const std::vector<TriplePattern>& group : query.optionals) {
    compiled.optionals.push_back(CompileGroup(group, &slots, store));
  }
  for (const std::string& var : query.select) slots.SlotOf(var);
  for (const std::string& var : query.group_by) slots.SlotOf(var);
  for (const Aggregate& agg : query.aggregates) {
    if (!agg.variable.empty()) slots.SlotOf(agg.variable);
  }
  for (const OrderKey& key : query.order_by) slots.SlotOf(key.variable);
  std::vector<VarSlot> filter_slot_scratch;
  for (const auto& filter : query.filters) {
    // Touch filter variables that exist nowhere else. Variables of `filter`
    // that never appear in any pattern keep the legacy never-ready
    // semantics; they still need slots so the executor can see them stay
    // unbound.
    CollectFilterSlots(*filter, slots, &filter_slot_scratch);
    for (const std::optional<PatternNode>* node :
         {&filter->lhs_node, &filter->rhs_node}) {
      if (node->has_value() && (*node)->is_variable) {
        slots.SlotOf((*node)->variable);
      }
    }
  }
  // Second pass over filter trees now that every variable has a slot.
  compiled.filters.reserve(query.filters.size());
  for (const auto& filter : query.filters) {
    CompiledFilter cf;
    cf.expr = filter.get();
    std::vector<VarSlot> raw;
    CollectFilterSlots(*filter, slots, &raw);
    for (VarSlot slot : raw) {
      if (slot == kNoSlot) continue;  // defensive; all vars have slots now
      if (std::find(cf.slots.begin(), cf.slots.end(), slot) ==
          cf.slots.end()) {
        cf.slots.push_back(slot);
      }
    }
    std::sort(cf.slots.begin(), cf.slots.end());
    compiled.filters.push_back(std::move(cf));
  }

  compiled.num_slots = slots.names_.size();
  compiled.slot_names = slots.names_;

  // Statistics-driven join order, per group. OPTIONAL groups start with
  // every slot of the required patterns bound.
  std::vector<bool> no_bound(compiled.num_slots, false);
  for (CompiledGroup& group : compiled.alternatives) {
    OrderGroup(&group, no_bound, compiled.num_slots, store, options.stats);
  }
  std::vector<bool> required_bound(compiled.num_slots, false);
  for (const CompiledGroup& group : compiled.alternatives) {
    for (const CompiledPattern& pattern : group.patterns) {
      for (const CompiledNode* node :
           {&pattern.subject, &pattern.predicate, &pattern.object}) {
        if (node->is_variable) required_bound[node->slot] = true;
      }
    }
  }
  for (CompiledGroup& group : compiled.optionals) {
    OrderGroup(&group, required_bound, compiled.num_slots, store,
               options.stats);
  }

  // Projection / grouping / ordering in slot space.
  if (!query.select_all) {
    for (const std::string& var : query.select) {
      compiled.select_slots.push_back(slots.Find(var));
    }
  }
  for (const std::string& var : query.group_by) {
    compiled.group_by_slots.push_back(slots.Find(var));
  }
  for (const Aggregate& agg : query.aggregates) {
    compiled.aggregate_slots.push_back(
        agg.variable.empty() ? kNoSlot : slots.Find(agg.variable));
  }
  for (const OrderKey& key : query.order_by) {
    compiled.order_slots.push_back({slots.Find(key.variable),
                                    key.descending});
  }

  // Single-variable filters compile to a truth bit per dictionary term.
  const rdf::Dictionary& dict = store.dictionary();
  if (dict.size() <= options.max_bitmap_terms) {
    for (CompiledFilter& cf : compiled.filters) {
      if (cf.slots.size() != 1) continue;
      cf.bitmap_slot = cf.slots[0];
      const std::string& name = compiled.slot_names[cf.bitmap_slot];
      Binding probe;
      auto it = probe.emplace(name, rdf::Term()).first;
      cf.bitmap.resize(dict.size());
      for (TermId id = 0; id < dict.size(); ++id) {
        it->second = dict.term(id);
        cf.bitmap[id] = EvalFilter(*cf.expr, probe);
      }
    }
  }

  // Slots observed outside a single pattern occurrence; everything the
  // AggregatedIndexScan eligibility test must preserve.
  compiled.needed_slots.assign(compiled.num_slots, query.select_all);
  auto need = [&](VarSlot slot) {
    if (slot != kNoSlot) compiled.needed_slots[slot] = true;
  };
  for (VarSlot slot : compiled.select_slots) need(slot);
  for (VarSlot slot : compiled.group_by_slots) need(slot);
  for (VarSlot slot : compiled.aggregate_slots) need(slot);
  for (const CompiledQuery::OrderSlot& key : compiled.order_slots) {
    need(key.slot);
  }
  for (const CompiledFilter& cf : compiled.filters) {
    for (VarSlot slot : cf.slots) need(slot);
  }
  for (const CompiledGroup& group : compiled.optionals) {
    for (const CompiledPattern& pattern : group.patterns) {
      for (const CompiledNode* node :
           {&pattern.subject, &pattern.predicate, &pattern.object}) {
        if (node->is_variable) need(node->slot);
      }
    }
  }

  if (options.build_physical_plans) {
    compiled.plans.reserve(compiled.alternatives.size());
    for (size_t i = 0; i < compiled.alternatives.size(); ++i) {
      compiled.plans.push_back(BuildPhysicalPlan(compiled, i, options.stats));
    }
  }
  return compiled;
}

}  // namespace alex::sparql
