#include "sparql/results_io.h"

#include <algorithm>
#include <set>

#include "rdf/ntriples.h"

namespace alex::sparql {
namespace {

// RFC 4180: quote when the value contains a comma, quote, or newline;
// embedded quotes are doubled.
std::string CsvEscape(const std::string& value) {
  if (value.find_first_of(",\"\r\n") == std::string::npos) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  for (unsigned char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

const char* XsdDatatype(rdf::LiteralType type) {
  switch (type) {
    case rdf::LiteralType::kInteger:
      return "http://www.w3.org/2001/XMLSchema#integer";
    case rdf::LiteralType::kDouble:
      return "http://www.w3.org/2001/XMLSchema#double";
    case rdf::LiteralType::kDate:
      return "http://www.w3.org/2001/XMLSchema#date";
    case rdf::LiteralType::kBoolean:
      return "http://www.w3.org/2001/XMLSchema#boolean";
    case rdf::LiteralType::kString:
      return nullptr;
  }
  return nullptr;
}

std::string TermToJson(const rdf::Term& term) {
  std::string out = "{\"type\":\"";
  switch (term.kind()) {
    case rdf::TermKind::kIri:
      out += "uri";
      break;
    case rdf::TermKind::kBlank:
      out += "bnode";
      break;
    case rdf::TermKind::kLiteral:
      out += "literal";
      break;
  }
  out += "\",\"value\":\"" + JsonEscape(term.lexical()) + "\"";
  if (term.is_literal()) {
    const char* datatype = XsdDatatype(term.literal_type());
    if (datatype != nullptr) {
      out += std::string(",\"datatype\":\"") + datatype + "\"";
    }
  }
  out += "}";
  return out;
}

}  // namespace

std::vector<std::string> ResultVariables(const Query& query,
                                         const std::vector<Binding>& rows) {
  std::vector<std::string> variables;
  if (!query.select_all &&
      (!query.select.empty() || !query.aggregates.empty())) {
    variables = query.select;
    for (const Aggregate& agg : query.aggregates) {
      variables.push_back(agg.as);
    }
    return variables;
  }
  std::set<std::string> seen;
  for (const Binding& row : rows) {
    for (const auto& [var, term] : row) seen.insert(var);
  }
  variables.assign(seen.begin(), seen.end());
  return variables;
}

std::string ResultsToCsv(const std::vector<Binding>& rows,
                         const std::vector<std::string>& variables) {
  std::string out;
  for (size_t i = 0; i < variables.size(); ++i) {
    if (i > 0) out += ',';
    out += CsvEscape(variables[i]);
  }
  out += "\r\n";
  for (const Binding& row : rows) {
    for (size_t i = 0; i < variables.size(); ++i) {
      if (i > 0) out += ',';
      auto it = row.find(variables[i]);
      if (it != row.end()) out += CsvEscape(it->second.lexical());
    }
    out += "\r\n";
  }
  return out;
}

std::string ResultsToTsv(const std::vector<Binding>& rows,
                         const std::vector<std::string>& variables) {
  std::string out;
  for (size_t i = 0; i < variables.size(); ++i) {
    if (i > 0) out += '\t';
    out += "?" + variables[i];
  }
  out += "\n";
  for (const Binding& row : rows) {
    for (size_t i = 0; i < variables.size(); ++i) {
      if (i > 0) out += '\t';
      auto it = row.find(variables[i]);
      if (it != row.end()) out += rdf::TermToNTriples(it->second);
    }
    out += "\n";
  }
  return out;
}

std::string ResultsToJson(const std::vector<Binding>& rows,
                          const std::vector<std::string>& variables) {
  std::string out = "{\"head\":{\"vars\":[";
  for (size_t i = 0; i < variables.size(); ++i) {
    if (i > 0) out += ',';
    out += "\"" + JsonEscape(variables[i]) + "\"";
  }
  out += "]},\"results\":{\"bindings\":[";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ',';
    out += '{';
    bool first = true;
    for (const std::string& var : variables) {
      auto it = rows[r].find(var);
      if (it == rows[r].end()) continue;  // unbound: omitted per spec
      if (!first) out += ',';
      first = false;
      out += "\"" + JsonEscape(var) + "\":" + TermToJson(it->second);
    }
    out += '}';
  }
  out += "]}}";
  return out;
}

std::string AskResultToJson(bool value) {
  return std::string("{\"head\":{},\"boolean\":") +
         (value ? "true" : "false") + "}";
}

}  // namespace alex::sparql
