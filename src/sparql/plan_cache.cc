#include "sparql/plan_cache.h"

#include <utility>

#include "sparql/parser.h"

namespace alex::sparql {

PlanCache::Entry* PlanCache::GetEntryLocked(const std::string& text) {
  auto it = entries_.find(text);
  if (it != entries_.end()) {
    ++stats_.parse_hits;
    return it->second.get();
  }
  ++stats_.parse_misses;
  auto entry = std::make_unique<Entry>();
  Result<Query> parsed = ParseQuery(text);
  if (parsed.ok()) {
    entry->parse_status = Status::Ok();
    entry->query = std::move(*parsed);
  } else {
    entry->parse_status = parsed.status();
  }
  Entry* raw = entry.get();
  entries_.emplace(text, std::move(entry));
  return raw;
}

Result<const Query*> PlanCache::GetParsed(const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = GetEntryLocked(text);
  if (!entry->parse_status.ok()) return entry->parse_status;
  return static_cast<const Query*>(&entry->query);
}

Result<const CompiledQuery*> PlanCache::GetPlan(
    const std::string& text, const rdf::TripleStore& store,
    const rdf::DatasetStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = GetEntryLocked(text);
  if (!entry->parse_status.ok()) return entry->parse_status;

  bool rebuild = !entry->has_plan;
  bool invalidated = false;
  if (!rebuild && entry->store != &store) {
    rebuild = true;
    invalidated = true;
  }
  if (!rebuild && stats != nullptr && entry->has_snapshot &&
      rdf::Drift(entry->snapshot, *stats) > drift_threshold_) {
    rebuild = true;
    invalidated = true;
  }

  if (rebuild) {
    ++stats_.plan_misses;
    if (invalidated) ++stats_.invalidations;
    CompileOptions options;
    options.stats = stats;
    options.build_physical_plans = true;
    entry->plan = CompileQuery(entry->query, store, options);
    entry->store = &store;
    entry->has_plan = true;
    if (stats != nullptr) {
      entry->snapshot = *stats;
      entry->has_snapshot = true;
    } else {
      entry->has_snapshot = false;
    }
  } else {
    ++stats_.plan_hits;
  }
  return static_cast<const CompiledQuery*>(&entry->plan);
}

PlanCache::Stats PlanCache::TakeStats() {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  stats_ = Stats();
  return out;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = Stats();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace alex::sparql
