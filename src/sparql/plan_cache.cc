#include "sparql/plan_cache.h"

#include <mutex>
#include <utility>

#include "sparql/parser.h"

namespace alex::sparql {

PlanCache::Entry* PlanCache::GetEntryLocked(const std::string& text) {
  auto it = entries_.find(text);
  if (it != entries_.end()) {
    parse_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.get();
  }
  parse_misses_.fetch_add(1, std::memory_order_relaxed);
  auto entry = std::make_unique<Entry>();
  Result<Query> parsed = ParseQuery(text);
  if (parsed.ok()) {
    entry->parse_status = Status::Ok();
    entry->query = std::move(*parsed);
  } else {
    entry->parse_status = parsed.status();
  }
  Entry* raw = entry.get();
  entries_.emplace(text, std::move(entry));
  return raw;
}

Result<const Query*> PlanCache::GetParsed(const std::string& text) {
  {
    // Fast path: the text was parsed before. Entries are heap-allocated,
    // never evicted, and the parsed Query is never mutated after creation,
    // so the pointer stays valid after the shared lock is dropped.
    std::shared_lock lock(mu_);
    auto it = entries_.find(text);
    if (it != entries_.end()) {
      parse_hits_.fetch_add(1, std::memory_order_relaxed);
      Entry* entry = it->second.get();
      if (!entry->parse_status.ok()) return entry->parse_status;
      return static_cast<const Query*>(&entry->query);
    }
  }
  std::unique_lock lock(mu_);
  Entry* entry = GetEntryLocked(text);
  if (!entry->parse_status.ok()) return entry->parse_status;
  return static_cast<const Query*>(&entry->query);
}

bool PlanCache::PlanIsFresh(const Entry& entry, const rdf::TripleStore& store,
                            const rdf::DatasetStats* stats) const {
  if (!entry.has_plan || entry.store != &store ||
      entry.store_generation != store.generation()) {
    return false;
  }
  if (stats != nullptr && entry.has_snapshot &&
      rdf::Drift(entry.snapshot, *stats) > drift_threshold_) {
    return false;
  }
  return true;
}

Result<const CompiledQuery*> PlanCache::GetPlan(
    const std::string& text, const rdf::TripleStore& store,
    const rdf::DatasetStats* stats) {
  {
    // Fast path: a still-fresh plan exists; serve it under the shared lock.
    std::shared_lock lock(mu_);
    auto it = entries_.find(text);
    if (it != entries_.end()) {
      Entry* entry = it->second.get();
      if (!entry->parse_status.ok()) {
        parse_hits_.fetch_add(1, std::memory_order_relaxed);
        return entry->parse_status;
      }
      if (PlanIsFresh(*entry, store, stats)) {
        parse_hits_.fetch_add(1, std::memory_order_relaxed);
        plan_hits_.fetch_add(1, std::memory_order_relaxed);
        return static_cast<const CompiledQuery*>(&entry->plan);
      }
    }
  }

  std::unique_lock lock(mu_);
  Entry* entry = GetEntryLocked(text);
  if (!entry->parse_status.ok()) return entry->parse_status;

  // Re-check under the exclusive lock: another thread may have rebuilt the
  // plan between the two lock acquisitions.
  if (PlanIsFresh(*entry, store, stats)) {
    plan_hits_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<const CompiledQuery*>(&entry->plan);
  }

  plan_misses_.fetch_add(1, std::memory_order_relaxed);
  // An entry that had a plan but failed the freshness check was invalidated
  // (store identity change or stats drift); a first compile was not.
  if (entry->has_plan) invalidations_.fetch_add(1, std::memory_order_relaxed);
  CompileOptions options;
  options.stats = stats;
  options.build_physical_plans = true;
  entry->plan = CompileQuery(entry->query, store, options);
  entry->store = &store;
  entry->store_generation = store.generation();
  entry->has_plan = true;
  if (stats != nullptr) {
    entry->snapshot = *stats;
    entry->has_snapshot = true;
  } else {
    entry->has_snapshot = false;
  }
  return static_cast<const CompiledQuery*>(&entry->plan);
}

PlanCache::Stats PlanCache::TakeStats() {
  Stats out;
  out.parse_hits = parse_hits_.exchange(0, std::memory_order_relaxed);
  out.parse_misses = parse_misses_.exchange(0, std::memory_order_relaxed);
  out.plan_hits = plan_hits_.exchange(0, std::memory_order_relaxed);
  out.plan_misses = plan_misses_.exchange(0, std::memory_order_relaxed);
  out.invalidations = invalidations_.exchange(0, std::memory_order_relaxed);
  return out;
}

PlanCache::Stats PlanCache::stats() const {
  Stats out;
  out.parse_hits = parse_hits_.load(std::memory_order_relaxed);
  out.parse_misses = parse_misses_.load(std::memory_order_relaxed);
  out.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  out.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  return out;
}

void PlanCache::Clear() {
  std::unique_lock lock(mu_);
  entries_.clear();
  parse_hits_.store(0, std::memory_order_relaxed);
  parse_misses_.store(0, std::memory_order_relaxed);
  plan_hits_.store(0, std::memory_order_relaxed);
  plan_misses_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
}

size_t PlanCache::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

}  // namespace alex::sparql
