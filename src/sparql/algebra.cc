#include "sparql/algebra.h"

#include <algorithm>

#include "common/strings.h"

namespace alex::sparql {

std::string PatternNode::ToString() const {
  if (is_variable) return "?" + variable;
  return term.ToString();
}

int TriplePattern::UnboundCount(
    const std::map<std::string, rdf::Term>& bound) const {
  int count = 0;
  for (const PatternNode* node : {&subject, &predicate, &object}) {
    if (node->is_variable && bound.find(node->variable) == bound.end()) {
      ++count;
    }
  }
  return count;
}

std::string TriplePattern::ToString() const {
  return subject.ToString() + " " + predicate.ToString() + " " +
         object.ToString() + " .";
}

const char* AggregateKindName(Aggregate::Kind kind) {
  switch (kind) {
    case Aggregate::Kind::kCount:
      return "COUNT";
    case Aggregate::Kind::kSum:
      return "SUM";
    case Aggregate::Kind::kAvg:
      return "AVG";
    case Aggregate::Kind::kMin:
      return "MIN";
    case Aggregate::Kind::kMax:
      return "MAX";
  }
  return "?";
}

std::vector<const std::vector<TriplePattern>*> Query::Alternatives() const {
  std::vector<const std::vector<TriplePattern>*> out;
  out.push_back(&patterns);
  for (const std::vector<TriplePattern>& alt : more_alternatives) {
    out.push_back(&alt);
  }
  return out;
}

std::string Query::ToString() const {
  if (is_ask) {
    std::string out = "ASK WHERE { ";
    for (const TriplePattern& p : patterns) out += p.ToString() + " ";
    out += "}";
    return out;
  }
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (select_all) {
    out += "*";
  } else {
    bool first = true;
    for (const std::string& var : select) {
      if (!first) out += " ";
      first = false;
      out += "?" + var;
    }
    for (const Aggregate& agg : aggregates) {
      if (!first) out += " ";
      first = false;
      out += "(" + std::string(AggregateKindName(agg.kind)) + "(" +
             (agg.variable.empty() ? "*" : "?" + agg.variable) + ") AS ?" +
             agg.as + ")";
    }
  }
  out += " WHERE { ";
  for (const TriplePattern& p : patterns) out += p.ToString() + " ";
  for (const std::vector<TriplePattern>& group : optionals) {
    out += "OPTIONAL { ";
    for (const TriplePattern& p : group) out += p.ToString() + " ";
    out += "} ";
  }
  out += "}";
  if (!group_by.empty()) {
    out += " GROUP BY";
    for (const std::string& var : group_by) out += " ?" + var;
  }
  if (!order_by.empty()) {
    out += " ORDER BY";
    for (const OrderKey& key : order_by) {
      out += key.descending ? " DESC(?" + key.variable + ")"
                            : " ?" + key.variable;
    }
  }
  if (limit) out += " LIMIT " + std::to_string(*limit);
  if (offset > 0) out += " OFFSET " + std::to_string(offset);
  return out;
}

namespace {

// Resolves a leaf to a term under `binding`; returns nullptr if it is an
// unbound variable.
const rdf::Term* Resolve(const PatternNode& node, const Binding& binding,
                         rdf::Term* storage) {
  if (!node.is_variable) {
    *storage = node.term;
    return storage;
  }
  auto it = binding.find(node.variable);
  if (it == binding.end()) return nullptr;
  return &it->second;
}

// Three-way comparison of two terms, numeric when both parse as numbers,
// lexical otherwise.
int CompareTerms(const rdf::Term& a, const rdf::Term& b) {
  double da = 0.0, db = 0.0;
  if (ParseDouble(a.lexical(), &da) && ParseDouble(b.lexical(), &db)) {
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  if (a.lexical() < b.lexical()) return -1;
  if (a.lexical() > b.lexical()) return 1;
  return 0;
}

}  // namespace

bool EvalFilter(const FilterExpr& expr, const Binding& binding) {
  switch (expr.op) {
    case FilterOp::kAnd:
      for (const auto& child : expr.children) {
        if (!EvalFilter(*child, binding)) return false;
      }
      return true;
    case FilterOp::kOr:
      for (const auto& child : expr.children) {
        if (EvalFilter(*child, binding)) return true;
      }
      return false;
    case FilterOp::kNot:
      return !expr.children.empty() &&
             !EvalFilter(*expr.children[0], binding);
    default:
      break;
  }
  rdf::Term lhs_storage, rhs_storage;
  const rdf::Term* lhs =
      expr.lhs_node ? Resolve(*expr.lhs_node, binding, &lhs_storage)
                    : nullptr;
  const rdf::Term* rhs =
      expr.rhs_node ? Resolve(*expr.rhs_node, binding, &rhs_storage)
                    : nullptr;
  if (lhs == nullptr || rhs == nullptr) return false;
  if (expr.op == FilterOp::kContains) {
    std::string hay = ToLowerAscii(lhs->lexical());
    std::string needle = ToLowerAscii(rhs->lexical());
    return hay.find(needle) != std::string::npos;
  }
  // Term equality for ==/!= compares whole terms when kinds match; numeric
  // comparison otherwise.
  int cmp = CompareTerms(*lhs, *rhs);
  switch (expr.op) {
    case FilterOp::kEq:
      return cmp == 0;
    case FilterOp::kNe:
      return cmp != 0;
    case FilterOp::kLt:
      return cmp < 0;
    case FilterOp::kLe:
      return cmp <= 0;
    case FilterOp::kGt:
      return cmp > 0;
    case FilterOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

int CompareBindingsForOrder(const Binding& a, const Binding& b,
                            const std::vector<OrderKey>& keys) {
  for (const OrderKey& key : keys) {
    auto ia = a.find(key.variable);
    auto ib = b.find(key.variable);
    bool ha = ia != a.end();
    bool hb = ib != b.end();
    int cmp = 0;
    if (ha != hb) {
      cmp = ha ? 1 : -1;  // unbound first
    } else if (ha && hb) {
      double da = 0.0, db = 0.0;
      if (ParseDouble(ia->second.lexical(), &da) &&
          ParseDouble(ib->second.lexical(), &db)) {
        cmp = da < db ? -1 : (da > db ? 1 : 0);
      } else {
        int c = ia->second.lexical().compare(ib->second.lexical());
        cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
      }
    }
    if (key.descending) cmp = -cmp;
    if (cmp != 0) return cmp;
  }
  return 0;
}

}  // namespace alex::sparql
