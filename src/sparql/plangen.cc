#include "sparql/plangen.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>

namespace alex::sparql {
namespace {

using rdf::IndexOrder;
using rdf::TermId;
using rdf::TermPattern;

// DP size cap: subset enumeration is O(3^n); beyond this the greedy
// executor's ordering is good enough and compile time matters more.
constexpr size_t kMaxDpPatterns = 9;
// Arena safety valve: candidate operators created during enumeration
// (including discarded ones) before the generator gives up.
constexpr size_t kMaxArenaOps = 200000;
// Fallback distinct-count guess when no statistics apply (mirrors the
// greedy orderer's default shrink factor).
constexpr double kDefaultDistinct = 50.0;
// Cost units: scanning/emitting one row costs 1. Hashing a build row costs
// kHashBuildFactor; opening one index probe costs kProbeCost (two binary
// searches).
constexpr double kHashBuildFactor = 2.0;
constexpr double kProbeCost = 4.0;

// One candidate plan for a pattern subset: a root in the shared arena plus
// the estimates and the slot -> register map of its output.
struct SubPlan {
  int op = -1;
  double rows = 0.0;
  double cost = 0.0;
  VarSlot order_slot = kNoSlot;
  std::vector<PlanReg> slot_reg;
};

class PlanBuilder {
 public:
  PlanBuilder(const CompiledQuery& compiled, size_t alternative,
              const rdf::DatasetStats* stats)
      : compiled_(compiled),
        group_(compiled.alternatives[alternative]),
        store_(*compiled.store),
        stats_(stats),
        n_(compiled.alternatives[alternative].patterns.size()) {}

  PhysicalPlan Build() {
    PhysicalPlan plan;
    if (n_ == 0 || n_ > kMaxDpPatterns || group_.unmatchable) return plan;
    const Query& query = *compiled_.query;
    dedup_ok_ = (query.distinct && query.aggregates.empty()) || query.is_ask;
    AssignRegisters();
    ComputeDistinctEstimates();

    std::vector<std::vector<SubPlan>> best(1u << n_);
    for (size_t i = 0; i < n_; ++i) {
      LeafPlans(i, &best[1u << i]);
    }
    for (uint32_t set = 1; set < (1u << n_); ++set) {
      if (std::popcount(set) < 2) continue;
      for (uint32_t left = (set - 1) & set; left != 0;
           left = (left - 1) & set) {
        uint32_t right = set ^ left;
        if (right == 0) continue;
        for (const SubPlan& pl : best[left]) {
          if (std::popcount(right) == 1) {
            ConsiderLookupJoin(&best[set], pl,
                               static_cast<size_t>(std::countr_zero(right)));
          }
          for (const SubPlan& pr : best[right]) {
            ConsiderHashJoin(&best[set], pl, pr);
            ConsiderMergeJoin(&best[set], pl, pr);
          }
        }
        if (overflow_) return plan;  // root stays -1: greedy fallback
      }
    }

    const std::vector<SubPlan>& pool = best[(1u << n_) - 1];
    if (pool.empty()) return plan;
    size_t chosen = 0;
    for (size_t i = 1; i < pool.size(); ++i) {
      if (pool[i].cost < pool[chosen].cost) chosen = i;
    }
    SubPlan final = pool[chosen];

    // Place every fully-covered FILTER at the lowest operator whose output
    // binds all its variables; the executor's filters-passed mask starts
    // from `applied_filters` so they are not re-evaluated at emission.
    uint64_t applied = 0;
    for (size_t fi = 0; fi < compiled_.filters.size() && fi < 64; ++fi) {
      const CompiledFilter& filter = compiled_.filters[fi];
      if (filter.slots.empty()) continue;
      bool covered = true;
      for (VarSlot slot : filter.slots) {
        if (final.slot_reg[slot] == kNoReg) covered = false;
      }
      if (!covered) continue;
      final.op = PlaceFilter(final.op, static_cast<int>(fi), filter);
      applied |= 1ull << fi;
    }

    Compact(final.op, &plan);
    plan.num_regs = num_regs_;
    plan.slot_reg = std::move(final.slot_reg);
    plan.applied_filters = applied;
    return plan;
  }

 private:
  const CompiledNode* Node(size_t pattern, int k) const {
    const CompiledPattern& p = group_.patterns[pattern];
    const CompiledNode* nodes[3] = {&p.subject, &p.predicate, &p.object};
    return nodes[k];
  }

  // One register per (pattern, position) variable; a variable repeated
  // inside one pattern reuses the first occurrence's register and becomes a
  // residual equality check (kCheck).
  void AssignRegisters() {
    base_pos_.assign(n_, {ScanPos::kConst, ScanPos::kConst, ScanPos::kConst});
    base_reg_.assign(n_, {kNoReg, kNoReg, kNoReg});
    slot_count_.assign(compiled_.num_slots, 0);
    for (size_t i = 0; i < n_; ++i) {
      for (int k = 0; k < 3; ++k) {
        const CompiledNode* node = Node(i, k);
        if (!node->is_variable) continue;
        ++slot_count_[node->slot];
        int first = -1;
        for (int j = 0; j < k; ++j) {
          const CompiledNode* prev = Node(i, j);
          if (prev->is_variable && prev->slot == node->slot) {
            first = j;
            break;
          }
        }
        if (first >= 0) {
          base_pos_[i][k] = ScanPos::kCheck;
          base_reg_[i][k] = base_reg_[i][first];
        } else {
          base_pos_[i][k] = ScanPos::kBind;
          base_reg_[i][k] = num_regs_;
          reg_slot_.push_back(node->slot);
          ++num_regs_;
        }
      }
    }
  }

  // Distinct-count estimate per slot: the most selective estimate over the
  // positions the slot occurs in, using per-predicate statistics when the
  // predicate is constant. Divides join-output estimates.
  void ComputeDistinctEstimates() {
    distinct_est_.assign(compiled_.num_slots, kDefaultDistinct);
    std::vector<bool> seen(compiled_.num_slots, false);
    for (size_t i = 0; i < n_; ++i) {
      const CompiledPattern& pattern = group_.patterns[i];
      const rdf::PredicateStats* pred_stats = nullptr;
      if (!pattern.predicate.is_variable && stats_ != nullptr) {
        pred_stats = stats_->Find(pattern.predicate.id);
      }
      for (int k = 0; k < 3; ++k) {
        const CompiledNode* node = Node(i, k);
        if (!node->is_variable) continue;
        double d = kDefaultDistinct;
        if (k == 1) {
          if (stats_ != nullptr) {
            d = std::max<double>(1.0, static_cast<double>(stats_->predicates));
          }
        } else if (pred_stats != nullptr) {
          d = std::max<double>(
              1.0, static_cast<double>(k == 0 ? pred_stats->distinct_subjects
                                              : pred_stats->distinct_objects));
        } else if (stats_ != nullptr) {
          d = std::max<double>(
              1.0, static_cast<double>(k == 0 ? stats_->subjects
                                              : stats_->distinct_objects));
        }
        if (!seen[node->slot] || d < distinct_est_[node->slot]) {
          distinct_est_[node->slot] = d;
          seen[node->slot] = true;
        }
      }
    }
  }

  // A slot may be run-skipped away when nothing outside this single
  // occurrence observes it.
  bool Eliminable(VarSlot slot) const {
    return slot_count_[slot] == 1 && !compiled_.needed_slots[slot];
  }

  // Keep `cand` unless an existing plan is at least as cheap AND at least
  // as small with an order that substitutes for cand's; evict plans cand
  // dominates the same way. Cardinality is part of the domination test
  // because two equal-cost subplans can feed very different row counts
  // into the joins above (an aggregated scan walks the same range as the
  // plain scan but emits only the distinct prefix runs).
  void Consider(std::vector<SubPlan>* pool, SubPlan cand) {
    if (ops_.size() > kMaxArenaOps) {
      overflow_ = true;
      return;
    }
    for (const SubPlan& p : *pool) {
      if (p.cost <= cand.cost && p.rows <= cand.rows &&
          (p.order_slot == cand.order_slot || cand.order_slot == kNoSlot)) {
        return;
      }
    }
    pool->erase(std::remove_if(pool->begin(), pool->end(),
                               [&](const SubPlan& p) {
                                 return cand.cost <= p.cost &&
                                        cand.rows <= p.rows &&
                                        (cand.order_slot == p.order_slot ||
                                         p.order_slot == kNoSlot);
                               }),
                pool->end());
    pool->push_back(std::move(cand));
  }

  void LeafPlans(size_t i, std::vector<SubPlan>* pool) {
    const CompiledPattern& pattern = group_.patterns[i];
    auto constant = [](const CompiledNode& node) -> TermPattern {
      if (node.is_variable) return std::nullopt;
      return node.id;
    };
    double rows = static_cast<double>(
        store_.CountMatches(constant(pattern.subject),
                            constant(pattern.predicate),
                            constant(pattern.object)));
    for (IndexOrder order :
         {IndexOrder::kSpo, IndexOrder::kPos, IndexOrder::kOsp}) {
      const int* positions = rdf::IndexPositions(order);
      // Constants must form a prefix of the index's position sequence.
      bool in_prefix = true;
      bool valid = true;
      std::vector<int> free_positions;  // in index sequence
      for (int k = 0; k < 3; ++k) {
        int pos = positions[k];
        if (base_pos_[i][pos] == ScanPos::kConst) {
          if (!in_prefix) valid = false;
        } else {
          in_prefix = false;
          free_positions.push_back(pos);
        }
      }
      if (!valid) continue;
      EmitScan(i, order, rows, free_positions, /*elim_count=*/0, pool);
      if (!dedup_ok_) continue;
      for (size_t elim = 1; elim <= free_positions.size(); ++elim) {
        int pos = free_positions[free_positions.size() - elim];
        const CompiledNode* node = Node(i, pos);
        if (base_pos_[i][pos] != ScanPos::kBind || !Eliminable(node->slot)) {
          break;  // suffix requirement: stop at the first non-eliminable
        }
        EmitScan(i, order, rows, free_positions, elim, pool);
      }
    }
  }

  void EmitScan(size_t i, IndexOrder order, double rows,
                const std::vector<int>& free_positions, size_t elim_count,
                std::vector<SubPlan>* pool) {
    PlanOp op;
    op.kind = elim_count == 0 ? PlanOpKind::kIndexScan
                              : PlanOpKind::kAggregatedIndexScan;
    op.pattern_index = static_cast<int>(i);
    op.index_order = order;
    for (int k = 0; k < 3; ++k) {
      op.pos[k] = base_pos_[i][k];
      op.pos_reg[k] = base_reg_[i][k];
    }
    for (size_t e = 0; e < elim_count; ++e) {
      op.pos[free_positions[free_positions.size() - 1 - e]] = ScanPos::kElim;
    }
    size_t emitted = free_positions.size() - elim_count;
    op.order_slot = emitted > 0
                        ? Node(i, free_positions[0])->slot
                        : kNoSlot;
    double est = rows;
    if (elim_count > 0) {
      if (emitted == 0) {
        est = std::min(rows, 1.0);
      } else {
        double distinct = 1.0;
        for (size_t e = 0; e < emitted; ++e) {
          distinct *= distinct_est_[Node(i, free_positions[e])->slot];
        }
        est = std::min(rows, distinct);
      }
    }
    op.est_rows = est;
    op.est_cost = rows + 1.0;

    SubPlan sub;
    sub.rows = est;
    sub.cost = op.est_cost;
    sub.order_slot = op.order_slot;
    sub.slot_reg.assign(compiled_.num_slots, kNoReg);
    for (int k = 0; k < 3; ++k) {
      if (op.pos[k] == ScanPos::kBind || op.pos[k] == ScanPos::kCheck) {
        VarSlot slot = Node(i, k)->slot;
        if (sub.slot_reg[slot] == kNoReg) sub.slot_reg[slot] = op.pos_reg[k];
        op.out_regs.push_back(op.pos_reg[k]);
      }
    }
    std::sort(op.out_regs.begin(), op.out_regs.end());
    op.out_regs.erase(std::unique(op.out_regs.begin(), op.out_regs.end()),
                      op.out_regs.end());
    ops_.push_back(std::move(op));
    sub.op = static_cast<int>(ops_.size() - 1);
    Consider(pool, std::move(sub));
  }

  // Output-cardinality estimate for a join over the given shared slots.
  double JoinRows(double left_rows, double right_rows,
                  const std::vector<VarSlot>& shared) const {
    double rows = left_rows * right_rows;
    for (VarSlot slot : shared) rows /= distinct_est_[slot];
    return std::max(rows, 0.001);
  }

  std::vector<VarSlot> SharedSlots(const SubPlan& left,
                                   const SubPlan& right) const {
    std::vector<VarSlot> shared;
    for (VarSlot s = 0; s < compiled_.num_slots; ++s) {
      if (left.slot_reg[s] != kNoReg && right.slot_reg[s] != kNoReg) {
        shared.push_back(s);
      }
    }
    return shared;
  }

  SubPlan JoinSubPlan(const SubPlan& left, const SubPlan& right,
                      PlanOp op, double rows, double cost) {
    op.est_rows = rows;
    op.est_cost = cost;
    op.out_regs = ops_[op.left].out_regs;
    if (op.right >= 0) {
      const std::vector<PlanReg>& r = ops_[op.right].out_regs;
      op.out_regs.insert(op.out_regs.end(), r.begin(), r.end());
      std::sort(op.out_regs.begin(), op.out_regs.end());
    }
    SubPlan sub;
    sub.rows = rows;
    sub.cost = cost;
    sub.order_slot = op.order_slot;
    sub.slot_reg = left.slot_reg;
    for (VarSlot s = 0; s < compiled_.num_slots; ++s) {
      if (sub.slot_reg[s] == kNoReg) sub.slot_reg[s] = right.slot_reg[s];
    }
    ops_.push_back(std::move(op));
    sub.op = static_cast<int>(ops_.size() - 1);
    return sub;
  }

  void ConsiderHashJoin(std::vector<SubPlan>* pool, const SubPlan& left,
                        const SubPlan& right) {
    std::vector<VarSlot> shared = SharedSlots(left, right);
    double rows = JoinRows(left.rows, right.rows, shared);
    double cost = left.cost + right.cost + kHashBuildFactor * right.rows +
                  left.rows + rows;
    PlanOp op;
    op.kind = PlanOpKind::kHashJoin;
    op.left = left.op;
    op.right = right.op;
    for (VarSlot s : shared) op.eq.push_back({left.slot_reg[s],
                                              right.slot_reg[s]});
    op.order_slot = left.order_slot;  // probe order is preserved
    Consider(pool, JoinSubPlan(left, right, std::move(op), rows, cost));
  }

  void ConsiderMergeJoin(std::vector<SubPlan>* pool, const SubPlan& left,
                         const SubPlan& right) {
    if (left.order_slot == kNoSlot || left.order_slot != right.order_slot) {
      return;
    }
    std::vector<VarSlot> shared = SharedSlots(left, right);
    double rows = JoinRows(left.rows, right.rows, shared);
    double cost = left.cost + right.cost + left.rows + right.rows + rows;
    PlanOp op;
    op.kind = PlanOpKind::kMergeJoin;
    op.left = left.op;
    op.right = right.op;
    VarSlot key = left.order_slot;
    op.eq.push_back({left.slot_reg[key], right.slot_reg[key]});
    for (VarSlot s : shared) {
      if (s != key) op.eq.push_back({left.slot_reg[s], right.slot_reg[s]});
    }
    op.order_slot = key;
    Consider(pool, JoinSubPlan(left, right, std::move(op), rows, cost));
  }

  // EstimatePatternRows probes the store, and the DP inner loop asks about
  // the same pattern under the same set of bound positions many times (once
  // per left sub-plan) — the estimate only depends on WHICH of the
  // pattern's three positions carry an already-bound variable, so memoize
  // on that 3-bit mask.
  double LookupPatternRows(size_t j, const SubPlan& left) {
    int mask = 0;
    for (int k = 0; k < 3; ++k) {
      const CompiledNode* node = Node(j, k);
      if (node->is_variable && left.slot_reg[node->slot] != kNoReg) {
        mask |= 1 << k;
      }
    }
    if (pattern_rows_cache_.empty()) {
      pattern_rows_cache_.assign(n_, {-1.0, -1.0, -1.0, -1.0,
                                      -1.0, -1.0, -1.0, -1.0});
    }
    double& cached = pattern_rows_cache_[j][mask];
    if (cached < 0.0) {
      std::vector<bool> bound(compiled_.num_slots, false);
      for (int k = 0; k < 3; ++k) {
        const CompiledNode* node = Node(j, k);
        if (node->is_variable && (mask & (1 << k))) bound[node->slot] = true;
      }
      cached = EstimatePatternRows(group_.patterns[j], bound, store_, stats_);
    }
    return cached;
  }

  void ConsiderLookupJoin(std::vector<SubPlan>* pool, const SubPlan& left,
                          size_t j) {
    double match = LookupPatternRows(j, left);

    PlanOp op;
    op.kind = PlanOpKind::kIndexLookupJoin;
    op.left = left.op;
    op.pattern_index = static_cast<int>(j);
    bool semi_ok = dedup_ok_;
    std::vector<PlanReg> bind_regs;
    for (int k = 0; k < 3; ++k) {
      const CompiledNode* node = Node(j, k);
      if (!node->is_variable) {
        op.pos[k] = ScanPos::kConst;
        continue;
      }
      if (left.slot_reg[node->slot] != kNoReg) {
        op.pos[k] = ScanPos::kProbe;
        op.pos_reg[k] = left.slot_reg[node->slot];
        continue;
      }
      op.pos[k] = base_pos_[j][k];
      op.pos_reg[k] = base_reg_[j][k];
      if (op.pos[k] == ScanPos::kBind) {
        bind_regs.push_back(op.pos_reg[k]);
        if (!Eliminable(node->slot)) semi_ok = false;
      }
    }
    op.semi = semi_ok;
    double rows = left.rows * match;
    if (op.semi) rows = left.rows * std::min(1.0, match);
    double cost = left.cost + left.rows * kProbeCost + rows;
    op.order_slot = left.order_slot;

    op.est_rows = rows;
    op.est_cost = cost;
    op.out_regs = ops_[op.left].out_regs;
    SubPlan sub;
    sub.rows = rows;
    sub.cost = cost;
    sub.order_slot = op.order_slot;
    sub.slot_reg = left.slot_reg;
    if (!op.semi) {
      for (int k = 0; k < 3; ++k) {
        if (op.pos[k] == ScanPos::kBind || op.pos[k] == ScanPos::kCheck) {
          VarSlot slot = Node(j, k)->slot;
          if (sub.slot_reg[slot] == kNoReg) {
            sub.slot_reg[slot] = op.pos_reg[k];
          }
          op.out_regs.push_back(op.pos_reg[k]);
        }
      }
      std::sort(op.out_regs.begin(), op.out_regs.end());
      op.out_regs.erase(std::unique(op.out_regs.begin(), op.out_regs.end()),
                        op.out_regs.end());
    }
    ops_.push_back(std::move(op));
    sub.op = static_cast<int>(ops_.size() - 1);
    Consider(pool, std::move(sub));
  }

  bool Covers(int op, const std::vector<VarSlot>& slots) const {
    for (VarSlot slot : slots) {
      bool found = false;
      for (PlanReg reg : ops_[op].out_regs) {
        if (reg_slot_[reg] == slot) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  PlanReg RegForSlot(int op, VarSlot slot) const {
    for (PlanReg reg : ops_[op].out_regs) {  // ascending: first = smallest
      if (reg_slot_[reg] == slot) return reg;
    }
    return kNoReg;
  }

  int PlaceFilter(int op, int filter_index, const CompiledFilter& filter) {
    for (int PlanOp::*child : {&PlanOp::left, &PlanOp::right}) {
      int c = ops_[op].*child;
      if (c >= 0 && Covers(c, filter.slots)) {
        int replaced = PlaceFilter(c, filter_index, filter);
        ops_[op].*child = replaced;
        return op;
      }
    }
    PlanOp fop;
    fop.kind = PlanOpKind::kFilter;
    fop.left = op;
    fop.filter_index = filter_index;
    for (VarSlot slot : filter.slots) {
      fop.filter_regs.push_back(RegForSlot(op, slot));
    }
    fop.order_slot = ops_[op].order_slot;
    fop.out_regs = ops_[op].out_regs;
    fop.est_rows = ops_[op].est_rows * 0.5;
    fop.est_cost = ops_[op].est_cost + ops_[op].est_rows;
    ops_.push_back(std::move(fop));
    return static_cast<int>(ops_.size() - 1);
  }

  // Copies the operators reachable from `root` into the plan, post-order
  // (children before parents), dropping the DP's discarded candidates.
  void Compact(int root, PhysicalPlan* plan) {
    std::vector<int> remap(ops_.size(), -1);
    std::vector<int> order;
    std::vector<int> visit{root};
    while (!visit.empty()) {
      int op = visit.back();
      visit.pop_back();
      order.push_back(op);
      if (ops_[op].left >= 0) visit.push_back(ops_[op].left);
      if (ops_[op].right >= 0) visit.push_back(ops_[op].right);
    }
    std::reverse(order.begin(), order.end());
    for (int op : order) {
      remap[op] = static_cast<int>(plan->ops.size());
      PlanOp copy = ops_[op];
      if (copy.left >= 0) copy.left = remap[copy.left];
      if (copy.right >= 0) copy.right = remap[copy.right];
      plan->ops.push_back(std::move(copy));
    }
    plan->root = remap[root];
  }

  const CompiledQuery& compiled_;
  const CompiledGroup& group_;
  const rdf::TripleStore& store_;
  const rdf::DatasetStats* stats_;
  size_t n_;
  bool dedup_ok_ = false;
  bool overflow_ = false;

  std::vector<PlanOp> ops_;  // DP arena (includes discarded candidates)
  std::vector<std::array<ScanPos, 3>> base_pos_;
  std::vector<std::array<PlanReg, 3>> base_reg_;
  std::vector<VarSlot> reg_slot_;
  std::vector<int> slot_count_;
  std::vector<double> distinct_est_;
  std::vector<std::array<double, 8>> pattern_rows_cache_;
  PlanReg num_regs_ = 0;
};

std::string NodeText(const CompiledQuery& compiled, const CompiledNode& node,
                     ScanPos pos) {
  if (node.is_variable) {
    std::string text = "?" + compiled.slot_names[node.slot];
    if (pos == ScanPos::kElim) text = "~" + text;
    if (pos == ScanPos::kProbe) text = "=" + text;
    return text;
  }
  return compiled.store->dictionary().term(node.id).ToString();
}

void RenderOp(const PhysicalPlan& plan, const CompiledQuery& compiled,
              const CompiledGroup& group, int op_index, int depth,
              const std::vector<size_t>* actual_rows, std::string* out) {
  const PlanOp& op = plan.ops[op_index];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  char buf[64];
  switch (op.kind) {
    case PlanOpKind::kIndexScan:
    case PlanOpKind::kAggregatedIndexScan:
    case PlanOpKind::kIndexLookupJoin: {
      if (op.kind == PlanOpKind::kIndexScan) {
        out->append("IndexScan(");
        out->append(rdf::IndexOrderName(op.index_order));
        out->append(")");
      } else if (op.kind == PlanOpKind::kAggregatedIndexScan) {
        out->append("AggregatedIndexScan(");
        out->append(rdf::IndexOrderName(op.index_order));
        out->append(")");
      } else {
        out->append(op.semi ? "IndexLookupJoin[semi]" : "IndexLookupJoin");
      }
      const CompiledPattern& pattern = group.patterns[op.pattern_index];
      const CompiledNode* nodes[3] = {&pattern.subject, &pattern.predicate,
                                      &pattern.object};
      out->append(" {");
      for (int k = 0; k < 3; ++k) {
        if (k > 0) out->append(" ");
        out->append(NodeText(compiled, *nodes[k], op.pos[k]));
      }
      out->append("}");
      break;
    }
    case PlanOpKind::kMergeJoin:
    case PlanOpKind::kHashJoin: {
      out->append(op.kind == PlanOpKind::kMergeJoin ? "MergeJoin"
                                                    : "HashJoin");
      if (op.order_slot != kNoSlot && op.kind == PlanOpKind::kMergeJoin) {
        out->append("(?" + compiled.slot_names[op.order_slot] + ")");
      } else if (op.eq.empty()) {
        out->append("(cross)");
      } else {
        std::snprintf(buf, sizeof(buf), "(%zu keys)", op.eq.size());
        out->append(buf);
      }
      break;
    }
    case PlanOpKind::kFilter: {
      std::snprintf(buf, sizeof(buf), "Filter(#%d)", op.filter_index);
      out->append(buf);
      break;
    }
  }
  std::snprintf(buf, sizeof(buf), "  est_rows=%.1f cost=%.1f", op.est_rows,
                op.est_cost);
  out->append(buf);
  if (actual_rows != nullptr) {
    std::snprintf(buf, sizeof(buf), " actual_rows=%zu",
                  (*actual_rows)[op_index]);
    out->append(buf);
  }
  out->append("\n");
  if (op.left >= 0) {
    RenderOp(plan, compiled, group, op.left, depth + 1, actual_rows, out);
  }
  if (op.right >= 0) {
    RenderOp(plan, compiled, group, op.right, depth + 1, actual_rows, out);
  }
}

}  // namespace

PhysicalPlan BuildPhysicalPlan(const CompiledQuery& compiled,
                               size_t alternative,
                               const rdf::DatasetStats* stats) {
  return PlanBuilder(compiled, alternative, stats).Build();
}

std::string RenderPlan(const PhysicalPlan& plan, const CompiledQuery& compiled,
                       size_t alternative,
                       const std::vector<size_t>* actual_rows) {
  if (plan.root < 0) {
    return "(greedy fallback: no physical plan)\n";
  }
  std::string out;
  RenderOp(plan, compiled, compiled.alternatives[alternative], plan.root, 0,
           actual_rows, &out);
  return out;
}

}  // namespace alex::sparql
