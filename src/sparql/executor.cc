#include "sparql/executor.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "sparql/operators.h"
#include "sparql/plangen.h"

namespace alex::sparql {
namespace {

using rdf::TermId;
using rdf::TermPattern;
using rdf::Triple;
using rdf::TripleStore;

// FNV-1a over an id tuple; used for GROUP BY / DISTINCT hash indexes.
struct IdRowHash {
  size_t operator()(const std::vector<TermId>& row) const {
    size_t h = 14695981039346656037ull;
    for (TermId id : row) {
      h ^= id;
      h *= 1099511628211ull;
    }
    return h;
  }
};

// True when every variable in `expr` is bound.
bool FilterReady(const FilterExpr& expr, const Binding& binding) {
  for (const auto& child : expr.children) {
    if (!FilterReady(*child, binding)) return false;
  }
  for (const std::optional<PatternNode>* node_opt :
       {&expr.lhs_node, &expr.rhs_node}) {
    if (node_opt->has_value() && (*node_opt)->is_variable &&
        binding.find((*node_opt)->variable) == binding.end()) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Legacy engine: term-space backtracking matcher. Kept as the differential
// oracle for the compiled engine. Constants are resolved to ids once at
// construction, and a parallel name -> TermId binding removes all dictionary
// lookups from the enumeration loop.
// ---------------------------------------------------------------------------

class Matcher {
 public:
  Matcher(const Query& query, const TripleStore& store)
      : query_(query), store_(store) {
    auto add = [&](const TriplePattern& pattern) {
      ResolvedPattern resolved;
      const PatternNode* nodes[3] = {&pattern.subject, &pattern.predicate,
                                     &pattern.object};
      for (int i = 0; i < 3; ++i) {
        if (nodes[i]->is_variable) {
          resolved.nodes[i].name = &nodes[i]->variable;
        } else if (std::optional<TermId> id =
                       store.dictionary().Lookup(nodes[i]->term)) {
          resolved.nodes[i].constant = *id;
        } else {
          resolved.unmatchable = true;
        }
      }
      resolved_.emplace(&pattern, resolved);
    };
    for (const std::vector<TriplePattern>* patterns : query.Alternatives()) {
      for (const TriplePattern& pattern : *patterns) add(pattern);
    }
    for (const std::vector<TriplePattern>& group : query.optionals) {
      for (const TriplePattern& pattern : group) add(pattern);
    }
  }

  // `stop` lets the caller cut enumeration short (LIMIT / max_rows / ASK).
  Status Enumerate(std::vector<const TriplePattern*> remaining,
                   Binding* binding, const std::function<Status()>& emit,
                   const bool* stop) {
    if (*stop) return Status::Ok();
    if (remaining.empty()) return emit();
    // Pick the most selective pattern (fewest unbound variables).
    size_t best = 0;
    int best_unbound = 4;
    for (size_t i = 0; i < remaining.size(); ++i) {
      int unbound = remaining[i]->UnboundCount(*binding);
      if (unbound < best_unbound) {
        best_unbound = unbound;
        best = i;
      }
    }
    const TriplePattern* pattern = remaining[best];
    remaining.erase(remaining.begin() + best);

    const ResolvedPattern& resolved = resolved_.at(pattern);
    if (resolved.unmatchable) return Status::Ok();
    TermPattern positions[3];
    for (int i = 0; i < 3; ++i) {
      if (resolved.nodes[i].name != nullptr) {
        auto it = id_binding_.find(*resolved.nodes[i].name);
        if (it != id_binding_.end()) positions[i] = it->second;
      } else {
        positions[i] = resolved.nodes[i].constant;
      }
    }
    const rdf::Dictionary& dict = store_.dictionary();
    rdf::MatchCursor cursor =
        store_.Scan(positions[0], positions[1], positions[2]);
    while (const Triple* t = cursor.Next()) {
      if (*stop) break;
      std::vector<const std::string*> added;
      bool consistent = true;
      auto bind = [&](const PatternNode& node, TermId id) {
        if (!node.is_variable) return;
        auto [it, inserted] = id_binding_.try_emplace(node.variable, id);
        if (inserted) {
          binding->emplace(node.variable, dict.term(id));
          added.push_back(&node.variable);
        } else if (it->second != id) {
          consistent = false;
        }
      };
      bind(pattern->subject, t->subject);
      if (consistent) bind(pattern->predicate, t->predicate);
      if (consistent) bind(pattern->object, t->object);
      if (consistent && EarlyFiltersPass(*binding)) {
        Status st = Enumerate(remaining, binding, emit, stop);
        if (!st.ok()) return st;
      }
      for (const std::string* var : added) {
        binding->erase(*var);
        id_binding_.erase(*var);
      }
    }
    return Status::Ok();
  }

 private:
  struct ResolvedNode {
    const std::string* name = nullptr;  // variable name; nullptr = constant
    TermPattern constant;               // resolved constant id
  };
  struct ResolvedPattern {
    ResolvedNode nodes[3];
    bool unmatchable = false;  // some constant is absent from the store
  };

  bool EarlyFiltersPass(const Binding& binding) const {
    for (const auto& filter : query_.filters) {
      if (FilterReady(*filter, binding) && !EvalFilter(*filter, binding)) {
        return false;
      }
    }
    return true;
  }

  const Query& query_;
  const TripleStore& store_;
  std::unordered_map<const TriplePattern*, ResolvedPattern> resolved_;
  // Mirror of the term binding in id space; kept in sync by bind/unbind.
  std::unordered_map<std::string, TermId> id_binding_;
};

// Groups `rows` by the GROUP BY keys and evaluates the aggregate
// projections per group. With no GROUP BY the whole input is one group
// (even when empty: COUNT(*) of nothing is 0). Groups are indexed by the
// id tuple of their key terms (all key terms come from `dict` — they were
// bound from store triples); terms foreign to the dictionary (possible only
// for synthetic inputs) fall back to an encoding-key string index.
std::vector<Binding> ApplyAggregates(const Query& query,
                                     const std::vector<Binding>& rows,
                                     const rdf::Dictionary& dict) {
  // Group rows (stable order of first appearance).
  std::vector<std::pair<Binding, std::vector<const Binding*>>> groups;
  std::unordered_map<std::vector<TermId>, size_t, IdRowHash> index;
  std::unordered_map<std::string, size_t> foreign_index;
  for (const Binding& row : rows) {
    std::vector<TermId> key(query.group_by.size(), rdf::kInvalidTermId);
    Binding key_binding;
    bool foreign = false;
    for (size_t i = 0; i < query.group_by.size(); ++i) {
      auto it = row.find(query.group_by[i]);
      if (it == row.end()) continue;
      key_binding.emplace(query.group_by[i], it->second);
      if (std::optional<TermId> id = dict.Lookup(it->second)) {
        key[i] = *id;
      } else {
        foreign = true;
      }
    }
    size_t slot;
    if (!foreign) {
      auto [entry, inserted] = index.emplace(std::move(key), groups.size());
      if (inserted) groups.push_back({std::move(key_binding), {}});
      slot = entry->second;
    } else {
      std::string text_key;
      for (const std::string& var : query.group_by) {
        auto it = row.find(var);
        if (it != row.end()) text_key += it->second.EncodingKey();
        text_key += '\x01';
      }
      auto [entry, inserted] =
          foreign_index.emplace(std::move(text_key), groups.size());
      if (inserted) groups.push_back({std::move(key_binding), {}});
      slot = entry->second;
    }
    groups[slot].second.push_back(&row);
  }
  if (groups.empty() && query.group_by.empty()) {
    groups.push_back({Binding{}, {}});  // global aggregate over zero rows
  }

  std::vector<Binding> out;
  out.reserve(groups.size());
  for (const auto& [key_binding, members] : groups) {
    Binding result = key_binding;
    for (const Aggregate& agg : query.aggregates) {
      if (agg.kind == Aggregate::Kind::kCount) {
        size_t count = 0;
        for (const Binding* row : members) {
          if (agg.variable.empty() || row->count(agg.variable) > 0) ++count;
        }
        result.emplace(agg.as,
                       rdf::Term::IntegerLiteral(
                           static_cast<int64_t>(count)));
        continue;
      }
      // Numeric folds over the bound, parseable values.
      double sum = 0.0;
      size_t n = 0;
      const rdf::Term* min_term = nullptr;
      const rdf::Term* max_term = nullptr;
      double min_value = 0.0, max_value = 0.0;
      for (const Binding* row : members) {
        auto it = row->find(agg.variable);
        if (it == row->end()) continue;
        double value = 0.0;
        if (!ParseDouble(it->second.lexical(), &value)) continue;
        sum += value;
        ++n;
        if (min_term == nullptr || value < min_value) {
          min_term = &it->second;
          min_value = value;
        }
        if (max_term == nullptr || value > max_value) {
          max_term = &it->second;
          max_value = value;
        }
      }
      switch (agg.kind) {
        case Aggregate::Kind::kSum:
          result.emplace(agg.as, rdf::Term::DoubleLiteral(sum));
          break;
        case Aggregate::Kind::kAvg:
          result.emplace(agg.as, rdf::Term::DoubleLiteral(
                                     n == 0 ? 0.0 : sum / n));
          break;
        case Aggregate::Kind::kMin:
          if (min_term != nullptr) result.emplace(agg.as, *min_term);
          break;
        case Aggregate::Kind::kMax:
          if (max_term != nullptr) result.emplace(agg.as, *max_term);
          break;
        case Aggregate::Kind::kCount:
          break;  // handled above
      }
    }
    out.push_back(std::move(result));
  }
  return out;
}

// DISTINCT over term-space rows. For plain projections the dedup index is
// a hash set over id tuples (select-list order); rows carrying terms the
// dictionary does not know (aggregate outputs, SELECT *) use set<Binding>.
std::vector<Binding> DedupRows(const Query& query, std::vector<Binding> rows,
                               const rdf::Dictionary& dict) {
  if (query.aggregates.empty() && !query.select_all) {
    std::vector<std::vector<TermId>> keys;
    keys.reserve(rows.size());
    bool ids_ok = true;
    for (const Binding& row : rows) {
      std::vector<TermId> key(query.select.size(), rdf::kInvalidTermId);
      for (size_t i = 0; i < query.select.size() && ids_ok; ++i) {
        auto it = row.find(query.select[i]);
        if (it == row.end()) continue;
        if (std::optional<TermId> id = dict.Lookup(it->second)) {
          key[i] = *id;
        } else {
          ids_ok = false;
        }
      }
      if (!ids_ok) break;
      keys.push_back(std::move(key));
    }
    if (ids_ok) {
      std::unordered_set<std::vector<TermId>, IdRowHash> seen;
      std::vector<Binding> unique;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (seen.insert(std::move(keys[i])).second) {
          unique.push_back(std::move(rows[i]));
        }
      }
      return unique;
    }
  }
  std::set<Binding> seen;
  std::vector<Binding> unique;
  for (Binding& row : rows) {
    if (seen.insert(row).second) unique.push_back(std::move(row));
  }
  return unique;
}

// Result tail after aggregation: DISTINCT, ORDER BY, OFFSET, LIMIT.
std::vector<Binding> FinishRowsTail(const Query& query,
                                    std::vector<Binding> rows,
                                    const rdf::Dictionary& dict) {
  if (query.distinct) rows = DedupRows(query, std::move(rows), dict);
  if (!query.order_by.empty()) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&query](const Binding& a, const Binding& b) {
                       return CompareBindingsForOrder(a, b, query.order_by) < 0;
                     });
  }
  if (query.offset > 0) {
    rows.erase(rows.begin(),
               rows.begin() + std::min(query.offset, rows.size()));
  }
  if (query.limit && rows.size() > *query.limit) {
    rows.resize(*query.limit);
  }
  return rows;
}

// Shared result tail: aggregation, DISTINCT, ORDER BY, OFFSET, LIMIT.
std::vector<Binding> FinishTermRows(const Query& query,
                                    std::vector<Binding> rows,
                                    const rdf::Dictionary& dict) {
  if (!query.aggregates.empty()) rows = ApplyAggregates(query, rows, dict);
  return FinishRowsTail(query, std::move(rows), dict);
}

// GROUP BY / aggregation over id rows (full slot snapshots), with exactly
// the ApplyAggregates semantics: stable first-appearance group order,
// COUNT(?v) counts bound rows, SUM / AVG fold the parseable values, and
// MIN / MAX keep the first term attaining a strict extremum. Only group
// keys and winning MIN / MAX terms are decoded through the dictionary;
// numeric parsing is memoized per TermId.
std::vector<Binding> AggregateIdRows(const CompiledQuery& plan,
                                     const std::vector<std::vector<TermId>>& rows,
                                     const rdf::Dictionary& dict) {
  const Query& query = *plan.query;
  struct IdGroup {
    std::vector<TermId> key;
    std::vector<const std::vector<TermId>*> members;
  };
  std::vector<IdGroup> groups;
  std::unordered_map<std::vector<TermId>, size_t, IdRowHash> index;
  for (const std::vector<TermId>& row : rows) {
    std::vector<TermId> key(plan.group_by_slots.size(), rdf::kInvalidTermId);
    for (size_t i = 0; i < plan.group_by_slots.size(); ++i) {
      VarSlot slot = plan.group_by_slots[i];
      if (slot != kNoSlot) key[i] = row[slot];
    }
    auto [entry, inserted] = index.emplace(key, groups.size());
    if (inserted) groups.push_back({std::move(key), {}});
    groups[entry->second].members.push_back(&row);
  }
  if (groups.empty() && query.group_by.empty()) {
    groups.push_back({{}, {}});  // global aggregate over zero rows
  }

  std::unordered_map<TermId, std::pair<bool, double>> parse_memo;
  auto parse = [&](TermId id, double* value) {
    auto [it, inserted] = parse_memo.try_emplace(id);
    if (inserted) {
      it->second.first = ParseDouble(dict.term(id).lexical(), &it->second.second);
    }
    *value = it->second.second;
    return it->second.first;
  };

  std::vector<Binding> out;
  out.reserve(groups.size());
  for (const IdGroup& group : groups) {
    Binding result;
    for (size_t i = 0; i < group.key.size(); ++i) {
      if (group.key[i] != rdf::kInvalidTermId) {
        result.emplace(query.group_by[i], dict.term(group.key[i]));
      }
    }
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const Aggregate& agg = query.aggregates[a];
      VarSlot slot = plan.aggregate_slots[a];
      if (agg.kind == Aggregate::Kind::kCount) {
        size_t count = 0;
        for (const std::vector<TermId>* row : group.members) {
          if (slot == kNoSlot || (*row)[slot] != rdf::kInvalidTermId) ++count;
        }
        result.emplace(agg.as,
                       rdf::Term::IntegerLiteral(static_cast<int64_t>(count)));
        continue;
      }
      double sum = 0.0;
      size_t n = 0;
      TermId min_id = rdf::kInvalidTermId;
      TermId max_id = rdf::kInvalidTermId;
      double min_value = 0.0, max_value = 0.0;
      for (const std::vector<TermId>* row : group.members) {
        TermId id = slot == kNoSlot ? rdf::kInvalidTermId : (*row)[slot];
        if (id == rdf::kInvalidTermId) continue;
        double value = 0.0;
        if (!parse(id, &value)) continue;
        sum += value;
        ++n;
        if (min_id == rdf::kInvalidTermId || value < min_value) {
          min_id = id;
          min_value = value;
        }
        if (max_id == rdf::kInvalidTermId || value > max_value) {
          max_id = id;
          max_value = value;
        }
      }
      switch (agg.kind) {
        case Aggregate::Kind::kSum:
          result.emplace(agg.as, rdf::Term::DoubleLiteral(sum));
          break;
        case Aggregate::Kind::kAvg:
          result.emplace(agg.as,
                         rdf::Term::DoubleLiteral(n == 0 ? 0.0 : sum / n));
          break;
        case Aggregate::Kind::kMin:
          if (min_id != rdf::kInvalidTermId) {
            result.emplace(agg.as, dict.term(min_id));
          }
          break;
        case Aggregate::Kind::kMax:
          if (max_id != rdf::kInvalidTermId) {
            result.emplace(agg.as, dict.term(max_id));
          }
          break;
        case Aggregate::Kind::kCount:
          break;  // handled above
      }
    }
    out.push_back(std::move(result));
  }
  return out;
}

Result<std::vector<Binding>> ExecuteLegacy(const Query& query,
                                           const rdf::TripleStore& store,
                                           const ExecuteOptions& options) {
  std::vector<Binding> rows;
  bool stop = false;
  Matcher matcher(query, store);

  // OPTIONAL groups are left-outer-joined one after another: each solution
  // is extended by every match of the group, or kept unchanged when the
  // group has no match.
  std::function<Status(size_t, Binding*)> apply_optionals =
      [&](size_t index, Binding* binding) -> Status {
    if (index >= query.optionals.size()) {
      // Final filters (some may involve only optional variables).
      for (const auto& filter : query.filters) {
        if (FilterReady(*filter, *binding) &&
            !EvalFilter(*filter, *binding)) {
          return Status::Ok();
        }
      }
      // Aggregation needs the full binding (the aggregated variables may
      // not be projected); projection happens inside ApplyAggregates.
      rows.push_back(query.aggregates.empty() ? Project(query, *binding)
                                              : *binding);
      if (rows.size() >= options.max_rows) stop = true;
      if (query.is_ask) stop = true;
      if (query.limit && !query.distinct && query.order_by.empty() &&
          query.aggregates.empty() && query.offset == 0 &&
          rows.size() >= *query.limit) {
        stop = true;
      }
      return Status::Ok();
    }
    std::vector<const TriplePattern*> group;
    for (const TriplePattern& p : query.optionals[index]) {
      group.push_back(&p);
    }
    bool matched = false;
    Status st = matcher.Enumerate(
        group, binding,
        [&]() -> Status {
          matched = true;
          return apply_optionals(index + 1, binding);
        },
        &stop);
    if (!st.ok()) return st;
    if (!matched) return apply_optionals(index + 1, binding);
    return Status::Ok();
  };

  for (const std::vector<TriplePattern>* patterns : query.Alternatives()) {
    if (stop) break;
    std::vector<const TriplePattern*> remaining;
    remaining.reserve(patterns->size());
    for (const TriplePattern& p : *patterns) remaining.push_back(&p);
    Binding binding;
    Status st = matcher.Enumerate(
        remaining, &binding,
        [&]() -> Status { return apply_optionals(0, &binding); }, &stop);
    if (!st.ok()) return st;
  }

  return FinishTermRows(query, std::move(rows), store.dictionary());
}

// ---------------------------------------------------------------------------
// Compiled engine: id-space enumeration over a CompiledQuery. Bindings live
// in a flat TermId array indexed by VarSlot; pattern positions resolve to
// either a precompiled constant id or a slot read; every probe is a lazy
// MatchCursor over one contiguous index range. Filters already proven to
// hold along the current path are tracked in a 64-bit mask so they are
// evaluated at most once per path (filters beyond the first 64 are simply
// re-evaluated — same verdict, just slower).
// ---------------------------------------------------------------------------

class CompiledExecutor {
 public:
  CompiledExecutor(const CompiledQuery& plan, const ExecuteOptions& options,
                   bool planned)
      : plan_(plan),
        query_(*plan.query),
        store_(*plan.store),
        dict_(plan.store->dictionary()),
        options_(options),
        planned_(planned),
        slots_(plan.num_slots, rdf::kInvalidTermId) {}

  // Collects per-operator produced-row counts per alternative (explain
  // instrumentation; planned groups only).
  void set_explain_actuals(std::vector<std::vector<size_t>>* actuals) {
    explain_actuals_ = actuals;
  }

  Result<std::vector<Binding>> Run() {
    for (size_t a = 0; a < plan_.alternatives.size(); ++a) {
      if (stop_) break;
      const CompiledGroup& group = plan_.alternatives[a];
      if (group.unmatchable) continue;
      std::fill(slots_.begin(), slots_.end(), rdf::kInvalidTermId);
      const PhysicalPlan* phys =
          planned_ && a < plan_.plans.size() ? &plan_.plans[a] : nullptr;
      if (phys != nullptr && phys->root >= 0) {
        RunPlannedGroup(group, *phys, a);
      } else {
        EnumerateGroup(group, 0, 0,
                       [this](uint64_t passed) { ApplyOptionals(0, passed); });
      }
    }
    if (!query_.aggregates.empty()) {
      return FinishRowsTail(query_,
                            AggregateIdRows(plan_, agg_id_rows_, dict_),
                            dict_);
    }
    if (query_.distinct) DedupIdRows();
    if (!query_.order_by.empty()) OrderIdRows();
    if (query_.offset > 0) {
      id_rows_.erase(
          id_rows_.begin(),
          id_rows_.begin() + std::min(query_.offset, id_rows_.size()));
    }
    if (query_.limit && id_rows_.size() > *query_.limit) {
      id_rows_.resize(*query_.limit);
    }
    return Materialize();
  }

 private:
  // Pull rows out of the group's physical operator tree; each row is
  // copied from the register file into the slot array via the plan's
  // representative-register map, then flows through the ordinary OPTIONAL /
  // filter / emission tail. Filters the plan already enforced seed the
  // filters-passed mask.
  void RunPlannedGroup(const CompiledGroup& group, const PhysicalPlan& phys,
                       size_t alternative) {
    OperatorTree tree = BuildOperatorTree(phys, plan_, group, &regs_);
    tree.root->Open();
    while (!stop_ && tree.root->Next()) {
      for (VarSlot slot = 0; slot < phys.slot_reg.size(); ++slot) {
        if (phys.slot_reg[slot] != kNoReg) {
          slots_[slot] = regs_[phys.slot_reg[slot]];
        }
      }
      ApplyOptionals(0, phys.applied_filters);
    }
    if (explain_actuals_ != nullptr) {
      (*explain_actuals_)[alternative] = tree.ProducedRows();
    }
  }

  TermPattern Value(const CompiledNode& node) const {
    if (!node.is_variable) return node.id;
    TermId id = slots_[node.slot];
    if (id == rdf::kInvalidTermId) return std::nullopt;
    return id;
  }

  bool EvalCompiled(const CompiledFilter& filter) const {
    if (!filter.bitmap.empty()) {
      return filter.bitmap[slots_[filter.bitmap_slot]];
    }
    Binding binding;
    for (VarSlot slot : filter.slots) {
      binding.emplace(plan_.slot_names[slot], dict_.term(slots_[slot]));
    }
    return EvalFilter(*filter.expr, binding);
  }

  // Evaluates every filter that is ready (all slots bound) and not yet
  // known to pass along this path; false prunes the path.
  bool FiltersPass(uint64_t* passed) const {
    for (size_t i = 0; i < plan_.filters.size(); ++i) {
      const bool tracked = i < 64;
      if (tracked && ((*passed >> i) & 1)) continue;
      const CompiledFilter& filter = plan_.filters[i];
      bool ready = true;
      for (VarSlot slot : filter.slots) {
        if (slots_[slot] == rdf::kInvalidTermId) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      if (!EvalCompiled(filter)) return false;
      if (tracked) *passed |= (1ull << i);
    }
    return true;
  }

  void EnumerateGroup(const CompiledGroup& group, size_t depth,
                      uint64_t passed,
                      const std::function<void(uint64_t)>& emit) {
    if (stop_) return;
    if (depth == group.patterns.size()) {
      emit(passed);
      return;
    }
    const CompiledPattern& pattern = group.patterns[depth];
    rdf::MatchCursor cursor =
        store_.Scan(Value(pattern.subject), Value(pattern.predicate),
                    Value(pattern.object));
    while (const Triple* t = cursor.Next()) {
      if (stop_) break;
      VarSlot undo[3];
      int undo_count = 0;
      bool consistent = true;
      auto bind = [&](const CompiledNode& node, TermId id) {
        if (!node.is_variable) return;
        TermId& slot = slots_[node.slot];
        if (slot == rdf::kInvalidTermId) {
          slot = id;
          undo[undo_count++] = node.slot;
        } else if (slot != id) {
          consistent = false;
        }
      };
      bind(pattern.subject, t->subject);
      if (consistent) bind(pattern.predicate, t->predicate);
      if (consistent) bind(pattern.object, t->object);
      if (consistent) {
        uint64_t local = passed;
        if (FiltersPass(&local)) EnumerateGroup(group, depth + 1, local, emit);
      }
      for (int i = 0; i < undo_count; ++i) {
        slots_[undo[i]] = rdf::kInvalidTermId;
      }
    }
  }

  void ApplyOptionals(size_t index, uint64_t passed) {
    if (stop_) return;
    if (index >= plan_.optionals.size()) {
      // Final filters: anything ready and not yet verified on this path
      // (filters over never-bound variables stay not-ready and pass).
      if (!FiltersPass(&passed)) return;
      if (!query_.aggregates.empty()) {
        // Aggregation consumes the full binding (the aggregated variables
        // may not be projected), as a slot snapshot in id space.
        agg_id_rows_.push_back(slots_);
      } else {
        id_rows_.push_back(ProjectIds());
      }
      size_t produced =
          query_.aggregates.empty() ? id_rows_.size() : agg_id_rows_.size();
      if (produced >= options_.max_rows) stop_ = true;
      if (query_.is_ask) stop_ = true;
      if (query_.limit && !query_.distinct && query_.order_by.empty() &&
          query_.aggregates.empty() && query_.offset == 0 &&
          produced >= *query_.limit) {
        stop_ = true;
      }
      return;
    }
    const CompiledGroup& group = plan_.optionals[index];
    if (group.unmatchable) {
      ApplyOptionals(index + 1, passed);
      return;
    }
    bool matched = false;
    EnumerateGroup(group, 0, passed, [&](uint64_t local) {
      matched = true;
      ApplyOptionals(index + 1, local);
    });
    if (!matched) ApplyOptionals(index + 1, passed);
  }

  std::vector<TermId> ProjectIds() const {
    if (query_.select_all) return slots_;
    std::vector<TermId> row(plan_.select_slots.size(), rdf::kInvalidTermId);
    for (size_t i = 0; i < plan_.select_slots.size(); ++i) {
      if (plan_.select_slots[i] != kNoSlot) row[i] = slots_[plan_.select_slots[i]];
    }
    return row;
  }

  void DedupIdRows() {
    std::unordered_set<std::vector<TermId>, IdRowHash> seen;
    std::vector<std::vector<TermId>> unique;
    unique.reserve(id_rows_.size());
    for (std::vector<TermId>& row : id_rows_) {
      if (seen.insert(row).second) unique.push_back(std::move(row));
    }
    id_rows_ = std::move(unique);
  }

  // ORDER BY over id rows, with exactly the CompareBindingsForOrder
  // semantics: a key variable outside the projection compares as unbound.
  void OrderIdRows() {
    std::vector<int> columns(plan_.order_slots.size(), -1);
    for (size_t k = 0; k < plan_.order_slots.size(); ++k) {
      VarSlot slot = plan_.order_slots[k].slot;
      if (slot == kNoSlot) continue;
      if (query_.select_all) {
        columns[k] = static_cast<int>(slot);
      } else {
        for (size_t i = 0; i < plan_.select_slots.size(); ++i) {
          if (plan_.select_slots[i] == slot) {
            columns[k] = static_cast<int>(i);
            break;
          }
        }
      }
    }
    auto compare = [&](const std::vector<TermId>& a,
                       const std::vector<TermId>& b) {
      for (size_t k = 0; k < plan_.order_slots.size(); ++k) {
        int col = columns[k];
        TermId ia = col >= 0 ? a[col] : rdf::kInvalidTermId;
        TermId ib = col >= 0 ? b[col] : rdf::kInvalidTermId;
        bool ha = ia != rdf::kInvalidTermId;
        bool hb = ib != rdf::kInvalidTermId;
        int cmp = 0;
        if (ha != hb) {
          cmp = ha ? 1 : -1;  // unbound first
        } else if (ha && hb && ia != ib) {
          const std::string& la = dict_.term(ia).lexical();
          const std::string& lb = dict_.term(ib).lexical();
          double da = 0.0, db = 0.0;
          if (ParseDouble(la, &da) && ParseDouble(lb, &db)) {
            cmp = da < db ? -1 : (da > db ? 1 : 0);
          } else {
            int c = la.compare(lb);
            cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
          }
        }
        if (plan_.order_slots[k].descending) cmp = -cmp;
        if (cmp != 0) return cmp < 0;
      }
      return false;
    };
    std::stable_sort(id_rows_.begin(), id_rows_.end(), compare);
  }

  std::vector<Binding> Materialize() const {
    std::vector<Binding> out;
    out.reserve(id_rows_.size());
    for (const std::vector<TermId>& row : id_rows_) {
      Binding binding;
      if (query_.select_all) {
        for (size_t i = 0; i < row.size(); ++i) {
          if (row[i] != rdf::kInvalidTermId) {
            binding.emplace(plan_.slot_names[i], dict_.term(row[i]));
          }
        }
      } else {
        for (size_t i = 0; i < row.size(); ++i) {
          if (row[i] != rdf::kInvalidTermId) {
            binding.emplace(query_.select[i], dict_.term(row[i]));
          }
        }
      }
      out.push_back(std::move(binding));
    }
    return out;
  }

  const CompiledQuery& plan_;
  const Query& query_;
  const TripleStore& store_;
  const rdf::Dictionary& dict_;
  const ExecuteOptions& options_;

  const bool planned_;
  std::vector<TermId> slots_;                // current path binding
  std::vector<TermId> regs_;                 // operator-tree register file
  std::vector<std::vector<TermId>> id_rows_;  // non-aggregate results
  // Full slot snapshots for aggregation (decoded lazily at fold time).
  std::vector<std::vector<TermId>> agg_id_rows_;
  std::vector<std::vector<size_t>>* explain_actuals_ = nullptr;
  bool stop_ = false;
};

}  // namespace

Binding Project(const Query& query, const Binding& binding) {
  if (query.select_all) return binding;
  Binding projected;
  for (const std::string& var : query.select) {
    auto it = binding.find(var);
    if (it != binding.end()) projected.emplace(var, it->second);
  }
  return projected;
}

Result<std::vector<Binding>> Execute(const Query& query,
                                     const rdf::TripleStore& store,
                                     const ExecuteOptions& options) {
  if (options.engine == ExecutorKind::kLegacy) {
    return ExecuteLegacy(query, store, options);
  }
  const bool planned = options.engine == ExecutorKind::kPlanned;
  CompiledQuery local;
  const CompiledQuery* plan = options.plan;
  if (plan != nullptr) {
    if (plan->query != &query || plan->store != &store) {
      return Status::InvalidArgument(
          "precompiled plan does not match query/store");
    }
  } else {
    CompileOptions compile_options;
    compile_options.stats = options.stats;
    compile_options.build_physical_plans = planned;
    local = CompileQuery(query, store, compile_options);
    plan = &local;
  }
  return CompiledExecutor(*plan, options, planned).Run();
}

Result<std::string> Explain(const Query& query, const rdf::TripleStore& store,
                            const ExecuteOptions& options) {
  CompiledQuery local;
  const CompiledQuery* plan = options.plan;
  if (plan != nullptr) {
    if (plan->query != &query || plan->store != &store) {
      return Status::InvalidArgument(
          "precompiled plan does not match query/store");
    }
    if (plan->plans.empty()) plan = nullptr;  // recompile with plans
  }
  if (plan == nullptr) {
    CompileOptions compile_options;
    compile_options.stats = options.stats;
    compile_options.build_physical_plans = true;
    local = CompileQuery(query, store, compile_options);
    plan = &local;
  }
  CompiledExecutor executor(*plan, options, /*planned=*/true);
  std::vector<std::vector<size_t>> actuals(plan->alternatives.size());
  executor.set_explain_actuals(&actuals);
  Result<std::vector<Binding>> rows = executor.Run();
  if (!rows.ok()) return rows.status();

  std::string out;
  for (size_t a = 0; a < plan->alternatives.size(); ++a) {
    if (plan->alternatives.size() > 1) {
      out += "alternative " + std::to_string(a) + ":\n";
    }
    const std::vector<size_t>* actual =
        a < actuals.size() && !actuals[a].empty() ? &actuals[a] : nullptr;
    if (a < plan->plans.size()) {
      out += RenderPlan(plan->plans[a], *plan, a, actual);
    } else {
      out += "(greedy fallback: no physical plan)\n";
    }
  }
  out += "rows returned: " + std::to_string(rows->size()) + "\n";
  return out;
}

Result<bool> Ask(const Query& query, const rdf::TripleStore& store,
                 const ExecuteOptions& options) {
  if (!query.is_ask) {
    return Status::InvalidArgument("query is not an ASK query");
  }
  Result<std::vector<Binding>> rows = Execute(query, store, options);
  if (!rows.ok()) return rows.status();
  return !rows->empty();
}

}  // namespace alex::sparql
