#include "sparql/executor.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/strings.h"

namespace alex::sparql {
namespace {

using rdf::TermId;
using rdf::TermPattern;
using rdf::Triple;
using rdf::TripleStore;

// Resolves a pattern node to a TermPattern for `store`. Returns false when
// the node is a constant that does not exist in the store (no matches
// possible).
bool ResolveNode(const PatternNode& node, const Binding& binding,
                 const TripleStore& store, TermPattern* out,
                 bool* unmatchable) {
  *unmatchable = false;
  const rdf::Term* term = nullptr;
  if (node.is_variable) {
    auto it = binding.find(node.variable);
    if (it == binding.end()) {
      *out = std::nullopt;
      return true;
    }
    term = &it->second;
  } else {
    term = &node.term;
  }
  std::optional<TermId> id = store.dictionary().Lookup(*term);
  if (!id) {
    *unmatchable = true;
    return false;
  }
  *out = *id;
  return true;
}

// True when every variable in `expr` is bound.
bool FilterReady(const FilterExpr& expr, const Binding& binding) {
  for (const auto& child : expr.children) {
    if (!FilterReady(*child, binding)) return false;
  }
  for (const std::optional<PatternNode>* node_opt :
       {&expr.lhs_node, &expr.rhs_node}) {
    if (node_opt->has_value() && (*node_opt)->is_variable &&
        binding.find((*node_opt)->variable) == binding.end()) {
      return false;
    }
  }
  return true;
}

// Backtracking basic-graph-pattern matcher. Extends a binding over a list
// of patterns, invoking `emit` for every complete solution. Early-applies
// the query's filters as soon as their variables are bound.
class Matcher {
 public:
  Matcher(const Query& query, const TripleStore& store)
      : query_(query), store_(store) {}

  // `stop` lets the caller cut enumeration short (LIMIT / max_rows / ASK).
  Status Enumerate(std::vector<const TriplePattern*> remaining,
                   Binding* binding, const std::function<Status()>& emit,
                   const bool* stop) {
    if (*stop) return Status::Ok();
    if (remaining.empty()) return emit();
    // Pick the most selective pattern (fewest unbound variables).
    size_t best = 0;
    int best_unbound = 4;
    for (size_t i = 0; i < remaining.size(); ++i) {
      int unbound = remaining[i]->UnboundCount(*binding);
      if (unbound < best_unbound) {
        best_unbound = unbound;
        best = i;
      }
    }
    const TriplePattern* pattern = remaining[best];
    remaining.erase(remaining.begin() + best);

    TermPattern s, p, o;
    bool bad = false;
    if (!ResolveNode(pattern->subject, *binding, store_, &s, &bad) && bad) {
      return Status::Ok();
    }
    if (!ResolveNode(pattern->predicate, *binding, store_, &p, &bad) && bad) {
      return Status::Ok();
    }
    if (!ResolveNode(pattern->object, *binding, store_, &o, &bad) && bad) {
      return Status::Ok();
    }
    const rdf::Dictionary& dict = store_.dictionary();
    for (const Triple& t : store_.Match(s, p, o)) {
      if (*stop) break;
      std::vector<std::string> added;
      bool consistent = true;
      auto bind = [&](const PatternNode& node, TermId id) {
        if (!node.is_variable) return;
        auto it = binding->find(node.variable);
        const rdf::Term& term = dict.term(id);
        if (it == binding->end()) {
          binding->emplace(node.variable, term);
          added.push_back(node.variable);
        } else if (!(it->second == term)) {
          consistent = false;
        }
      };
      bind(pattern->subject, t.subject);
      if (consistent) bind(pattern->predicate, t.predicate);
      if (consistent) bind(pattern->object, t.object);
      if (consistent && EarlyFiltersPass(*binding)) {
        Status st = Enumerate(remaining, binding, emit, stop);
        if (!st.ok()) return st;
      }
      for (const std::string& var : added) binding->erase(var);
    }
    return Status::Ok();
  }

 private:
  bool EarlyFiltersPass(const Binding& binding) const {
    for (const auto& filter : query_.filters) {
      if (FilterReady(*filter, binding) && !EvalFilter(*filter, binding)) {
        return false;
      }
    }
    return true;
  }

  const Query& query_;
  const TripleStore& store_;
};

// Groups `rows` by the GROUP BY keys and evaluates the aggregate
// projections per group. With no GROUP BY the whole input is one group
// (even when empty: COUNT(*) of nothing is 0).
std::vector<Binding> ApplyAggregates(const Query& query,
                                     const std::vector<Binding>& rows) {
  // Group rows (stable order of first appearance).
  std::vector<std::pair<Binding, std::vector<const Binding*>>> groups;
  std::map<std::string, size_t> index;
  for (const Binding& row : rows) {
    std::string key;
    Binding key_binding;
    for (const std::string& var : query.group_by) {
      auto it = row.find(var);
      if (it != row.end()) {
        key += it->second.EncodingKey();
        key_binding.emplace(var, it->second);
      }
      key += '\x01';
    }
    auto [slot, inserted] = index.emplace(key, groups.size());
    if (inserted) groups.push_back({std::move(key_binding), {}});
    groups[slot->second].second.push_back(&row);
  }
  if (groups.empty() && query.group_by.empty()) {
    groups.push_back({Binding{}, {}});  // global aggregate over zero rows
  }

  std::vector<Binding> out;
  out.reserve(groups.size());
  for (const auto& [key_binding, members] : groups) {
    Binding result = key_binding;
    for (const Aggregate& agg : query.aggregates) {
      if (agg.kind == Aggregate::Kind::kCount) {
        size_t count = 0;
        for (const Binding* row : members) {
          if (agg.variable.empty() || row->count(agg.variable) > 0) ++count;
        }
        result.emplace(agg.as,
                       rdf::Term::IntegerLiteral(
                           static_cast<int64_t>(count)));
        continue;
      }
      // Numeric folds over the bound, parseable values.
      double sum = 0.0;
      size_t n = 0;
      const rdf::Term* min_term = nullptr;
      const rdf::Term* max_term = nullptr;
      double min_value = 0.0, max_value = 0.0;
      for (const Binding* row : members) {
        auto it = row->find(agg.variable);
        if (it == row->end()) continue;
        double value = 0.0;
        if (!ParseDouble(it->second.lexical(), &value)) continue;
        sum += value;
        ++n;
        if (min_term == nullptr || value < min_value) {
          min_term = &it->second;
          min_value = value;
        }
        if (max_term == nullptr || value > max_value) {
          max_term = &it->second;
          max_value = value;
        }
      }
      switch (agg.kind) {
        case Aggregate::Kind::kSum:
          result.emplace(agg.as, rdf::Term::DoubleLiteral(sum));
          break;
        case Aggregate::Kind::kAvg:
          result.emplace(agg.as, rdf::Term::DoubleLiteral(
                                     n == 0 ? 0.0 : sum / n));
          break;
        case Aggregate::Kind::kMin:
          if (min_term != nullptr) result.emplace(agg.as, *min_term);
          break;
        case Aggregate::Kind::kMax:
          if (max_term != nullptr) result.emplace(agg.as, *max_term);
          break;
        case Aggregate::Kind::kCount:
          break;  // handled above
      }
    }
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace

Binding Project(const Query& query, const Binding& binding) {
  if (query.select_all) return binding;
  Binding projected;
  for (const std::string& var : query.select) {
    auto it = binding.find(var);
    if (it != binding.end()) projected.emplace(var, it->second);
  }
  return projected;
}

Result<std::vector<Binding>> Execute(const Query& query,
                                     const rdf::TripleStore& store,
                                     const ExecuteOptions& options) {
  std::vector<Binding> rows;
  bool stop = false;
  Matcher matcher(query, store);

  // OPTIONAL groups are left-outer-joined one after another: each solution
  // is extended by every match of the group, or kept unchanged when the
  // group has no match.
  std::function<Status(size_t, Binding*)> apply_optionals =
      [&](size_t index, Binding* binding) -> Status {
    if (index >= query.optionals.size()) {
      // Final filters (some may involve only optional variables).
      for (const auto& filter : query.filters) {
        if (FilterReady(*filter, *binding) &&
            !EvalFilter(*filter, *binding)) {
          return Status::Ok();
        }
      }
      // Aggregation needs the full binding (the aggregated variables may
      // not be projected); projection happens inside ApplyAggregates.
      rows.push_back(query.aggregates.empty() ? Project(query, *binding)
                                              : *binding);
      if (rows.size() >= options.max_rows) stop = true;
      if (query.is_ask) stop = true;
      if (query.limit && !query.distinct && query.order_by.empty() &&
          query.aggregates.empty() && query.offset == 0 &&
          rows.size() >= *query.limit) {
        stop = true;
      }
      return Status::Ok();
    }
    std::vector<const TriplePattern*> group;
    for (const TriplePattern& p : query.optionals[index]) {
      group.push_back(&p);
    }
    bool matched = false;
    Status st = matcher.Enumerate(
        group, binding,
        [&]() -> Status {
          matched = true;
          return apply_optionals(index + 1, binding);
        },
        &stop);
    if (!st.ok()) return st;
    if (!matched) return apply_optionals(index + 1, binding);
    return Status::Ok();
  };

  for (const std::vector<TriplePattern>* patterns : query.Alternatives()) {
    if (stop) break;
    std::vector<const TriplePattern*> remaining;
    remaining.reserve(patterns->size());
    for (const TriplePattern& p : *patterns) remaining.push_back(&p);
    Binding binding;
    Status st = matcher.Enumerate(
        remaining, &binding,
        [&]() -> Status { return apply_optionals(0, &binding); }, &stop);
    if (!st.ok()) return st;
  }

  if (!query.aggregates.empty()) rows = ApplyAggregates(query, rows);
  if (query.distinct) {
    std::set<Binding> seen;
    std::vector<Binding> unique;
    for (Binding& row : rows) {
      if (seen.insert(row).second) unique.push_back(std::move(row));
    }
    rows = std::move(unique);
  }
  if (!query.order_by.empty()) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&query](const Binding& a, const Binding& b) {
                       return CompareBindingsForOrder(a, b, query.order_by) < 0;
                     });
  }
  if (query.offset > 0) {
    rows.erase(rows.begin(),
               rows.begin() + std::min(query.offset, rows.size()));
  }
  if (query.limit && rows.size() > *query.limit) {
    rows.resize(*query.limit);
  }
  return rows;
}

Result<bool> Ask(const Query& query, const rdf::TripleStore& store,
                 const ExecuteOptions& options) {
  if (!query.is_ask) {
    return Status::InvalidArgument("query is not an ASK query");
  }
  Result<std::vector<Binding>> rows = Execute(query, store, options);
  if (!rows.ok()) return rows.status();
  return !rows->empty();
}

}  // namespace alex::sparql
