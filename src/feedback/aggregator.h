// Multi-user feedback aggregation.
//
// The paper assumes a service provider collecting feedback "from many users
// over a large number of links" (§7.2, batch mode) and notes that feedback
// could be refined "so that ALEX uses only high quality feedback obtained
// from a large number of users (e.g., using techniques from [16])"
// (§6.3). This module implements that refinement step: raw votes from
// individual users are aggregated per link and only emitted to ALEX once a
// quorum agrees, which suppresses most incorrect feedback before it ever
// reaches the learner.
//
// Usage:
//   FeedbackAggregator agg(options);
//   if (auto verdict = agg.AddVote(link, user_says_yes)) {
//     engine.ApplyLinkFeedback(link, *verdict);
//   }
#ifndef ALEX_FEEDBACK_AGGREGATOR_H_
#define ALEX_FEEDBACK_AGGREGATOR_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "linking/link.h"

namespace alex::feedback {

struct AggregatorOptions {
  // Votes required on a link before a verdict can be emitted.
  int quorum = 3;
  // Fraction of votes that must agree (strictly greater than). 0.5 =
  // simple majority.
  double majority = 0.5;
  // After a verdict fires, the tally resets (true) or keeps accumulating
  // so future votes refine the same tally (false).
  bool reset_after_verdict = true;
};

class FeedbackAggregator {
 public:
  explicit FeedbackAggregator(const AggregatorOptions& options = {})
      : options_(options) {}

  // Records one user's vote on `link`. Returns the aggregated verdict once
  // the quorum is reached and one side has a strict majority; std::nullopt
  // while the link is still undecided (or the vote is an exact tie at
  // quorum, in which case tallying continues).
  std::optional<bool> AddVote(const linking::Link& link, bool approve);

  // Current tally for a link (0 if unknown).
  int PositiveVotes(const linking::Link& link) const;
  int NegativeVotes(const linking::Link& link) const;

  // Number of links with open (un-emitted) tallies.
  size_t pending() const { return tallies_.size(); }

  // Verdicts emitted so far.
  uint64_t verdicts_emitted() const { return verdicts_emitted_; }

 private:
  struct Tally {
    int positive = 0;
    int negative = 0;
  };

  AggregatorOptions options_;
  std::unordered_map<linking::Link, Tally, linking::LinkHash> tallies_;
  uint64_t verdicts_emitted_ = 0;
};

}  // namespace alex::feedback

#endif  // ALEX_FEEDBACK_AGGREGATOR_H_
