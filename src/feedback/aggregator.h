// Sharded multi-user feedback aggregation.
//
// The paper assumes a service provider collecting feedback "from many users
// over a large number of links" (§7.2, batch mode) and notes that feedback
// could be refined "so that ALEX uses only high quality feedback obtained
// from a large number of users (e.g., using techniques from [16])" (§6.3).
// At provider scale that feedback arrives as a high-rate, unordered vote
// stream from many serving threads at once, so the aggregator is built as a
// sharded concurrent accumulator:
//
//   * AddVote is the hot path: LinkHash picks one of num_shards shards, the
//     shard's own std::mutex guards a find-or-insert into the shard-local
//     tally map, and the critical section is a couple of integer bumps. A
//     vote never touches (or contends with) any other shard.
//   * No verdict is computed per vote. Quorum evaluation is deferred to
//     DrainVerdicts(epoch), called once at every episode/epoch boundary:
//     every tally that reached the quorum with a strict majority emits one
//     LinkVerdict, and the batch is returned sorted by (left, right) IRI —
//     a deterministic order, whatever arrival order or thread count
//     produced the votes.
//
// Because verdicts depend only on the per-link vote MULTISET at drain time
// (never on per-vote arrival order), the drained batch is bitwise-identical
// for any interleaving of the same votes — the property the vote-stream
// identity gates in tests/feedback/aggregator_test.cc and bench_feedback
// assert at 1/2/4 threads.
//
// Tallies that never become quorate (ties, links nobody re-votes on) would
// otherwise accumulate forever; DrainVerdicts evicts tallies that went
// stale_after_epochs without a new vote and, when the pending population
// still exceeds max_pending, evicts the oldest (then IRI-smallest) tallies
// deterministically down to the cap.
//
// Usage (one epoch):
//   FeedbackAggregator agg(options);
//   ... many threads: agg.AddVote(link, user_says_yes) ...
//   for (const LinkVerdict& v : agg.DrainVerdicts(epoch)) {
//     engine.ApplyLinkFeedback(v.link, v.approve);
//   }
#ifndef ALEX_FEEDBACK_AGGREGATOR_H_
#define ALEX_FEEDBACK_AGGREGATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "linking/link.h"

namespace alex::feedback {

struct AggregatorOptions {
  // Votes required on a link before a verdict can be emitted.
  int quorum = 3;
  // Fraction of votes that must agree (strictly greater than). 0.5 =
  // simple majority.
  double majority = 0.5;
  // After a verdict is drained, the link's tally resets (true) or keeps
  // accumulating so later votes refine the same tally (false). With false,
  // a link re-emits at a later drain only if new votes arrived since.
  bool reset_after_verdict = true;
  // Number of tally shards; rounded up to a power of two. 1 is the
  // single-lock baseline the differential tests and bench_feedback compare
  // the sharded default against.
  size_t num_shards = 16;
  // A tally with no new votes for this many drains is evicted as stale
  // (its votes are counted as suppressed). 0 disables the TTL.
  uint64_t stale_after_epochs = 16;
  // Hard cap on open tallies after a drain; 0 = unbounded. When exceeded,
  // tallies are evicted oldest-last-vote-epoch first (ties by ascending
  // link IRIs) until the cap holds.
  size_t max_pending = 0;
};

// One aggregated verdict, with the tally that produced it.
struct LinkVerdict {
  linking::Link link;
  bool approve = false;
  uint32_t positive = 0;
  uint32_t negative = 0;
};

// Point-in-time counters (relaxed; exact when no votes are in flight).
struct AggregatorStats {
  uint64_t votes_recorded = 0;
  uint64_t verdicts_emitted = 0;
  // Votes that never reached the learner: minority votes inside emitted
  // verdicts plus every vote of an evicted tally.
  uint64_t votes_suppressed = 0;
  uint64_t tallies_evicted = 0;
  size_t pending = 0;
};

class FeedbackAggregator {
 public:
  explicit FeedbackAggregator(const AggregatorOptions& options = {});

  FeedbackAggregator(const FeedbackAggregator&) = delete;
  FeedbackAggregator& operator=(const FeedbackAggregator&) = delete;

  // Records one user's vote on `link`. Thread-safe; only the owning shard
  // is touched. Verdicts are NOT computed here — call DrainVerdicts at the
  // epoch boundary.
  void AddVote(const linking::Link& link, bool approve);

  // Evaluates every open tally against the quorum/majority rule and
  // returns the epoch's verdict batch, sorted by (left, right) IRI.
  // Quorate tallies reset (or are marked emitted when reset_after_verdict
  // is false); stale tallies and overflow beyond max_pending are evicted.
  // `epoch` must be non-decreasing across calls. Call from one thread with
  // no concurrent AddVote (the loops drain after their vote threads join);
  // the batch is a pure function of the per-link vote multisets.
  std::vector<LinkVerdict> DrainVerdicts(uint64_t epoch);

  // Current tally for a link (0 if unknown). Test/diagnostic accessors.
  int PositiveVotes(const linking::Link& link) const;
  int NegativeVotes(const linking::Link& link) const;

  // Number of links with open (un-emitted) tallies.
  size_t pending() const;

  // Verdicts emitted so far.
  uint64_t verdicts_emitted() const {
    return verdicts_emitted_.load(std::memory_order_relaxed);
  }

  AggregatorStats stats() const;

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Tally {
    uint32_t positive = 0;
    uint32_t negative = 0;
    // Votes in the tally when it last emitted (reset_after_verdict=false
    // re-emits only after new votes arrive).
    uint32_t votes_at_last_emit = 0;
    // Epoch of the most recent vote (as of the last drain that saw it; new
    // votes stamp the epoch the next drain will run under).
    uint64_t last_vote_epoch = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<linking::Link, Tally, linking::LinkHash> tallies;
  };

  Shard& ShardFor(const linking::Link& link) {
    return *shards_[linking::LinkHash{}(link) & shard_mask_];
  }
  const Shard& ShardFor(const linking::Link& link) const {
    return *shards_[linking::LinkHash{}(link) & shard_mask_];
  }

  AggregatorOptions options_;
  // unique_ptr: Shard holds a mutex and must never move.
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  // The epoch stamped on incoming votes; DrainVerdicts(e) publishes e + 1.
  std::atomic<uint64_t> vote_epoch_{0};
  std::atomic<uint64_t> votes_recorded_{0};
  std::atomic<uint64_t> verdicts_emitted_{0};
  std::atomic<uint64_t> votes_suppressed_{0};
  std::atomic<uint64_t> tallies_evicted_{0};
};

}  // namespace alex::feedback

#endif  // ALEX_FEEDBACK_AGGREGATOR_H_
