// Simulated user feedback (paper §7.1, "Generating Feedback"): a feedback
// item on a candidate link is positive iff the link exists in the ground
// truth — optionally corrupted with a configurable error rate (Appendix C
// evaluates ALEX under 10% incorrect feedback).
#ifndef ALEX_FEEDBACK_ORACLE_H_
#define ALEX_FEEDBACK_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "linking/link.h"

namespace alex::feedback {

// The curated set of correct links between the two data sets.
class GroundTruth {
 public:
  GroundTruth() = default;
  explicit GroundTruth(const std::vector<linking::Link>& links) {
    for (const linking::Link& link : links) Add(link);
  }

  void Add(linking::Link link) { links_.insert(std::move(link)); }
  bool Contains(const linking::Link& link) const {
    return links_.count(link) > 0;
  }
  size_t size() const { return links_.size(); }

  const std::unordered_set<linking::Link, linking::LinkHash>& links() const {
    return links_;
  }

 private:
  std::unordered_set<linking::Link, linking::LinkHash> links_;
};

// A feedback oracle with an error rate: with probability `error_rate` the
// correct feedback is flipped (approve a wrong answer / reject a correct
// one).
//
// Thread-safe and interleaving-independent: the flip for the k-th query of
// a given link is a pure hash of (seed, link, k), not a draw from a shared
// RNG stream. Concurrent partition episodes may interleave queries to
// DIFFERENT links in any order without changing any answer — each link's
// queries happen in a deterministic order because every link belongs to
// exactly one partition (or to the extras shard).
class Oracle {
 public:
  // `truth` must outlive the oracle.
  Oracle(const GroundTruth* truth, double error_rate, uint64_t seed)
      : truth_(truth), error_rate_(error_rate), seed_(seed) {}

  // Feedback for one candidate link.
  bool Feedback(const linking::Link& link);

  size_t items() const { return items_.load(std::memory_order_relaxed); }
  size_t errors() const { return errors_.load(std::memory_order_relaxed); }

 private:
  const GroundTruth* truth_;
  double error_rate_;
  uint64_t seed_;
  std::mutex mu_;
  // Per-link query counters (k of the next query), guarded by mu_. Only
  // touched when error_rate_ > 0.
  std::unordered_map<linking::Link, uint64_t, linking::LinkHash>
      draw_counts_;
  std::atomic<size_t> items_{0};
  std::atomic<size_t> errors_{0};
};

}  // namespace alex::feedback

#endif  // ALEX_FEEDBACK_ORACLE_H_
