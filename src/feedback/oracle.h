// Simulated user feedback (paper §7.1, "Generating Feedback"): a feedback
// item on a candidate link is positive iff the link exists in the ground
// truth — optionally corrupted with a configurable error rate (Appendix C
// evaluates ALEX under 10% incorrect feedback).
#ifndef ALEX_FEEDBACK_ORACLE_H_
#define ALEX_FEEDBACK_ORACLE_H_

#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "linking/link.h"

namespace alex::feedback {

// The curated set of correct links between the two data sets.
class GroundTruth {
 public:
  GroundTruth() = default;
  explicit GroundTruth(const std::vector<linking::Link>& links) {
    for (const linking::Link& link : links) Add(link);
  }

  void Add(linking::Link link) { links_.insert(std::move(link)); }
  bool Contains(const linking::Link& link) const {
    return links_.count(link) > 0;
  }
  size_t size() const { return links_.size(); }

  const std::unordered_set<linking::Link, linking::LinkHash>& links() const {
    return links_;
  }

 private:
  std::unordered_set<linking::Link, linking::LinkHash> links_;
};

// A feedback oracle with an error rate: with probability `error_rate` the
// correct feedback is flipped (approve a wrong answer / reject a correct
// one).
class Oracle {
 public:
  // `truth` must outlive the oracle.
  Oracle(const GroundTruth* truth, double error_rate, uint64_t seed)
      : truth_(truth), error_rate_(error_rate), rng_(seed) {}

  // Feedback for one candidate link.
  bool Feedback(const linking::Link& link) {
    bool correct = truth_->Contains(link);
    ++items_;
    if (rng_.NextBool(error_rate_)) {
      ++errors_;
      return !correct;
    }
    return correct;
  }

  size_t items() const { return items_; }
  size_t errors() const { return errors_; }

 private:
  const GroundTruth* truth_;
  double error_rate_;
  Rng rng_;
  size_t items_ = 0;
  size_t errors_ = 0;
};

}  // namespace alex::feedback

#endif  // ALEX_FEEDBACK_ORACLE_H_
