#include "feedback/aggregator.h"

namespace alex::feedback {

std::optional<bool> FeedbackAggregator::AddVote(const linking::Link& link,
                                                bool approve) {
  Tally& tally = tallies_[link];
  if (approve) {
    ++tally.positive;
  } else {
    ++tally.negative;
  }
  int total = tally.positive + tally.negative;
  if (total < options_.quorum) return std::nullopt;
  double threshold = options_.majority * total;
  std::optional<bool> verdict;
  if (tally.positive > threshold) {
    verdict = true;
  } else if (tally.negative > threshold) {
    verdict = false;
  }
  if (verdict.has_value()) {
    ++verdicts_emitted_;
    if (options_.reset_after_verdict) {
      tallies_.erase(link);
    }
  }
  return verdict;
}

int FeedbackAggregator::PositiveVotes(const linking::Link& link) const {
  auto it = tallies_.find(link);
  return it == tallies_.end() ? 0 : it->second.positive;
}

int FeedbackAggregator::NegativeVotes(const linking::Link& link) const {
  auto it = tallies_.find(link);
  return it == tallies_.end() ? 0 : it->second.negative;
}

}  // namespace alex::feedback
