#include "feedback/aggregator.h"

#include <algorithm>
#include <utility>

namespace alex::feedback {

namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FeedbackAggregator::FeedbackAggregator(const AggregatorOptions& options)
    : options_(options) {
  size_t shards = RoundUpPowerOfTwo(std::max<size_t>(1, options.num_shards));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shards - 1;
}

void FeedbackAggregator::AddVote(const linking::Link& link, bool approve) {
  const uint64_t epoch = vote_epoch_.load(std::memory_order_relaxed);
  Shard& shard = ShardFor(link);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    Tally& tally = shard.tallies[link];
    if (approve) {
      ++tally.positive;
    } else {
      ++tally.negative;
    }
    tally.last_vote_epoch = epoch;
  }
  votes_recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<LinkVerdict> FeedbackAggregator::DrainVerdicts(uint64_t epoch) {
  std::vector<LinkVerdict> batch;
  // Tallies that survive the quorum check this drain, candidates for the
  // max_pending overflow eviction: (last_vote_epoch, link) sorted so the
  // eviction order is deterministic.
  struct PendingRef {
    uint64_t last_vote_epoch;
    linking::Link link;
  };
  std::vector<PendingRef> open;

  uint64_t emitted = 0;
  uint64_t suppressed = 0;
  uint64_t evicted = 0;
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->tallies.begin(); it != shard->tallies.end();) {
      Tally& tally = it->second;
      const uint32_t total = tally.positive + tally.negative;
      const uint32_t fresh_votes = total - tally.votes_at_last_emit;
      bool verdict_set = false;
      bool verdict = false;
      if (total >= static_cast<uint32_t>(options_.quorum) &&
          fresh_votes > 0) {
        const double threshold = options_.majority * total;
        if (tally.positive > threshold) {
          verdict_set = true;
          verdict = true;
        } else if (tally.negative > threshold) {
          verdict_set = true;
          verdict = false;
        }
      }
      if (verdict_set) {
        LinkVerdict out;
        out.link = it->first;
        out.approve = verdict;
        out.positive = tally.positive;
        out.negative = tally.negative;
        batch.push_back(std::move(out));
        ++emitted;
        // The minority never reaches the learner: one verdict carries the
        // majority's evidence, the dissent is filtered out here (§6.3).
        suppressed += verdict ? tally.negative : tally.positive;
        if (options_.reset_after_verdict) {
          it = shard->tallies.erase(it);
          continue;
        }
        tally.votes_at_last_emit = total;
        ++it;
        continue;
      }
      // Not quorate (or nothing new since the last emission): age it out or
      // keep it pending.
      if (options_.stale_after_epochs > 0 &&
          epoch >= tally.last_vote_epoch + options_.stale_after_epochs) {
        suppressed += total - tally.votes_at_last_emit;
        ++evicted;
        it = shard->tallies.erase(it);
        continue;
      }
      open.push_back(PendingRef{tally.last_vote_epoch, it->first});
      ++it;
    }
  }

  // Overflow eviction: down to max_pending, dropping the tallies that went
  // longest without a vote first (ties broken by link order) — the same
  // victims whatever shard or thread count produced them.
  if (options_.max_pending > 0 && open.size() > options_.max_pending) {
    std::sort(open.begin(), open.end(),
              [](const PendingRef& a, const PendingRef& b) {
                if (a.last_vote_epoch != b.last_vote_epoch) {
                  return a.last_vote_epoch < b.last_vote_epoch;
                }
                return a.link < b.link;
              });
    const size_t to_evict = open.size() - options_.max_pending;
    for (size_t i = 0; i < to_evict; ++i) {
      Shard& shard = ShardFor(open[i].link);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.tallies.find(open[i].link);
      if (it == shard.tallies.end()) continue;
      suppressed += it->second.positive + it->second.negative -
                    it->second.votes_at_last_emit;
      ++evicted;
      shard.tallies.erase(it);
    }
  }

  std::sort(batch.begin(), batch.end(),
            [](const LinkVerdict& a, const LinkVerdict& b) {
              return a.link < b.link;
            });
  verdicts_emitted_.fetch_add(emitted, std::memory_order_relaxed);
  votes_suppressed_.fetch_add(suppressed, std::memory_order_relaxed);
  tallies_evicted_.fetch_add(evicted, std::memory_order_relaxed);
  // Votes arriving after this drain belong to the next epoch.
  vote_epoch_.store(epoch + 1, std::memory_order_relaxed);
  return batch;
}

int FeedbackAggregator::PositiveVotes(const linking::Link& link) const {
  const Shard& shard = ShardFor(link);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.tallies.find(link);
  return it == shard.tallies.end() ? 0
                                   : static_cast<int>(it->second.positive);
}

int FeedbackAggregator::NegativeVotes(const linking::Link& link) const {
  const Shard& shard = ShardFor(link);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.tallies.find(link);
  return it == shard.tallies.end() ? 0
                                   : static_cast<int>(it->second.negative);
}

size_t FeedbackAggregator::pending() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->tallies.size();
  }
  return total;
}

AggregatorStats FeedbackAggregator::stats() const {
  AggregatorStats out;
  out.votes_recorded = votes_recorded_.load(std::memory_order_relaxed);
  out.verdicts_emitted = verdicts_emitted_.load(std::memory_order_relaxed);
  out.votes_suppressed = votes_suppressed_.load(std::memory_order_relaxed);
  out.tallies_evicted = tallies_evicted_.load(std::memory_order_relaxed);
  out.pending = pending();
  return out;
}

}  // namespace alex::feedback
