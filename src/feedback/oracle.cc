// GroundTruth and Oracle are header-only; this translation unit anchors the
// alex_feedback library target.
#include "feedback/oracle.h"
