#include "feedback/oracle.h"

#include <string>

namespace alex::feedback {
namespace {

// FNV-1a over a byte string, continuing from `h`.
uint64_t Fnv1a(const std::string& s, uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// SplitMix64 finalizer — turns a structured hash into uniform bits.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from (seed, link, k).
double HashToUnit(uint64_t seed, const linking::Link& link, uint64_t k) {
  uint64_t h = Fnv1a(link.left, 0xcbf29ce484222325ull);
  h ^= 0x01;  // separator so ("ab", "c") and ("a", "bc") differ
  h *= 0x100000001b3ull;
  h = Fnv1a(link.right, h);
  h = Mix(h ^ Mix(seed) ^ Mix(k * 0x632be59bd9b4e019ull + 1));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool Oracle::Feedback(const linking::Link& link) {
  const bool correct = truth_->Contains(link);
  items_.fetch_add(1, std::memory_order_relaxed);
  if (error_rate_ <= 0.0) return correct;
  uint64_t k;
  {
    std::lock_guard<std::mutex> lock(mu_);
    k = draw_counts_[link]++;
  }
  if (HashToUnit(seed_, link, k) < error_rate_) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return !correct;
  }
  return correct;
}

}  // namespace alex::feedback
