// String similarity metrics, all returning scores in [0, 1].
#ifndef ALEX_SIMILARITY_STRING_METRICS_H_
#define ALEX_SIMILARITY_STRING_METRICS_H_

#include <string_view>

namespace alex::sim {

// 1 - levenshtein(a, b) / max(|a|, |b|). Two empty strings score 1.
double NormalizedLevenshtein(std::string_view a, std::string_view b);

// Jaro-Winkler similarity with the standard prefix bonus (p = 0.1, max
// prefix 4).
double JaroWinkler(std::string_view a, std::string_view b);

// Jaccard similarity of the whitespace-token sets of `a` and `b`,
// case-insensitive. Two empty strings score 1.
double TokenJaccard(std::string_view a, std::string_view b);

// The composite string similarity used by ALEX's generic similarity
// function: case-insensitive max of NormalizedLevenshtein and TokenJaccard.
// Robust both to typos (edit distance) and to word reordering (tokens).
double StringSimilarity(std::string_view a, std::string_view b);

}  // namespace alex::sim

#endif  // ALEX_SIMILARITY_STRING_METRICS_H_
