#include "similarity/string_metrics.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/strings.h"

namespace alex::sim {

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return 0.0;
  // Two-row dynamic program.
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, curr);
  }
  double dist = static_cast<double>(prev[m]);
  return 1.0 - dist / static_cast<double>(std::max(n, m));
}

double JaroWinkler(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const int window = std::max(0, std::max(n, m) / 2 - 1);
  std::vector<bool> a_match(n, false);
  std::vector<bool> b_match(m, false);
  int matches = 0;
  for (int i = 0; i < n; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(m - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!b_match[j] && a[i] == b[j]) {
        a_match[i] = true;
        b_match[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < n; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double mm = matches;
  double jaro = (mm / n + mm / m + (mm - transpositions / 2.0) / mm) / 3.0;
  // Winkler prefix bonus.
  int prefix = 0;
  for (int i = 0; i < std::min({n, m, 4}); ++i) {
    if (a[i] != b[i]) break;
    ++prefix;
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double TokenJaccard(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = SplitWordsNormalized(ToLowerAscii(a));
  std::vector<std::string> tb = SplitWordsNormalized(ToLowerAscii(b));
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  std::unordered_set<std::string> sa(ta.begin(), ta.end());
  std::unordered_set<std::string> sb(tb.begin(), tb.end());
  size_t inter = 0;
  for (const std::string& t : sa) {
    if (sb.count(t) > 0) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double StringSimilarity(std::string_view a, std::string_view b) {
  std::string la = ToLowerAscii(a);
  std::string lb = ToLowerAscii(b);
  return std::max(NormalizedLevenshtein(la, lb), TokenJaccard(la, lb));
}

}  // namespace alex::sim
