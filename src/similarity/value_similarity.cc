#include "similarity/value_similarity.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "similarity/string_metrics.h"

namespace alex::sim {

using rdf::LiteralType;
using rdf::Term;
using rdf::TermKind;

double NumericSimilarity(double a, double b, double tolerance) {
  double denom = std::max({std::fabs(a), std::fabs(b), 1.0});
  double rel = std::fabs(a - b) / denom;
  if (tolerance <= 0.0) return rel == 0.0 ? 1.0 : 0.0;
  return std::max(0.0, 1.0 - rel / tolerance);
}

double DateSimilarity(int64_t a_days, int64_t b_days, double scale_days) {
  double diff = std::fabs(static_cast<double>(a_days - b_days));
  if (scale_days <= 0.0) return diff == 0.0 ? 1.0 : 0.0;
  return std::max(0.0, 1.0 - diff / scale_days);
}

std::string_view IriLocalName(std::string_view iri) {
  size_t pos = iri.find_last_of("#/");
  if (pos == std::string_view::npos || pos + 1 >= iri.size()) return iri;
  return iri.substr(pos + 1);
}

double RescaleAboveFloor(double raw, double floor) {
  if (floor <= 0.0) return raw;
  if (raw <= floor) return 0.0;
  return (raw - floor) / (1.0 - floor);
}

double CalibratedStringSimilarity(std::string_view a, std::string_view b,
                                  double noise_floor) {
  std::string la = ToLowerAscii(a);
  std::string lb = ToLowerAscii(b);
  double lev = RescaleAboveFloor(NormalizedLevenshtein(la, lb), noise_floor);
  return std::max(lev, TokenJaccard(la, lb));
}

namespace {

bool IsNumeric(const Term& t) {
  return t.is_literal() && (t.literal_type() == LiteralType::kInteger ||
                            t.literal_type() == LiteralType::kDouble);
}

}  // namespace

double ValueSimilarity(const Term& a, const Term& b,
                       const SimilarityOptions& options) {
  // IRIs: identity, else fuzzy match on local names (links between resources
  // often differ only in namespace).
  if (a.is_iri() && b.is_iri()) {
    if (a.lexical() == b.lexical()) return 1.0;
    return CalibratedStringSimilarity(IriLocalName(a.lexical()),
                                      IriLocalName(b.lexical()),
                                      options.string_noise_floor);
  }
  if (a.is_literal() && b.is_literal()) {
    LiteralType ta = a.literal_type();
    LiteralType tb = b.literal_type();
    if (IsNumeric(a) && IsNumeric(b)) {
      return NumericSimilarity(a.AsDouble(), b.AsDouble(),
                               options.numeric_tolerance);
    }
    if (ta == LiteralType::kDate && tb == LiteralType::kDate) {
      return DateSimilarity(a.AsDateDays(), b.AsDateDays(),
                            options.date_scale_days);
    }
    if (ta == LiteralType::kBoolean && tb == LiteralType::kBoolean) {
      return a.AsBoolean() == b.AsBoolean() ? 1.0 : 0.0;
    }
    // Mixed numeric/string: try to interpret both as numbers (e.g., a year
    // stored as a string on one side).
    double da = 0.0, db = 0.0;
    if ((IsNumeric(a) || ta == LiteralType::kString) &&
        (IsNumeric(b) || tb == LiteralType::kString) && (ta != tb)) {
      if (ParseDouble(a.lexical(), &da) && ParseDouble(b.lexical(), &db)) {
        return NumericSimilarity(da, db, options.numeric_tolerance);
      }
    }
    // Date vs string: exact lexical match only.
    if ((ta == LiteralType::kDate) != (tb == LiteralType::kDate)) {
      return a.lexical() == b.lexical() ? 1.0 : 0.0;
    }
    return CalibratedStringSimilarity(a.lexical(), b.lexical(),
                                      options.string_noise_floor);
  }
  // IRI vs literal: match literal against the IRI local name.
  if (a.is_iri() && b.is_literal()) {
    return CalibratedStringSimilarity(IriLocalName(a.lexical()), b.lexical(),
                                      options.string_noise_floor);
  }
  if (a.is_literal() && b.is_iri()) {
    return CalibratedStringSimilarity(a.lexical(), IriLocalName(b.lexical()),
                                      options.string_noise_floor);
  }
  // Blank nodes carry no comparable value.
  return 0.0;
}

}  // namespace alex::sim
