// The generic, type-dispatched value similarity used to populate similarity
// matrices between entities (paper §4.1): returns a score in [0, 1] that
// depends on the literal types of the two values.
#ifndef ALEX_SIMILARITY_VALUE_SIMILARITY_H_
#define ALEX_SIMILARITY_VALUE_SIMILARITY_H_

#include "rdf/term.h"

namespace alex::sim {

struct SimilarityOptions {
  // Dates further apart than this many days score 0.
  double date_scale_days = 1200.0;
  // Numeric relative difference beyond this fraction scores 0 (see
  // NumericSimilarity).
  double numeric_tolerance = 0.1;
  // Raw normalized-Levenshtein similarity below this floor is treated as 0
  // and the range above it is rescaled to [0, 1]. Random same-alphabet
  // strings have raw edit similarity around 0.2-0.4, so without this floor
  // the θ = 0.3 filter (paper §6.1) would keep most of the pair space.
  double string_noise_floor = 0.4;
};

// Similarity between two numeric values: 1 - rel/tolerance clamped to
// [0, 1], where rel = |a-b| / max(|a|, |b|, 1).
double NumericSimilarity(double a, double b, double tolerance = 0.1);

// Similarity between two dates in days-since-epoch.
double DateSimilarity(int64_t a_days, int64_t b_days, double scale_days);

// Generic similarity dispatching on the term kinds/types:
//  * two string literals           -> StringSimilarity
//  * two numeric literals          -> NumericSimilarity
//  * two date literals             -> DateSimilarity
//  * two booleans                  -> equality
//  * two IRIs                      -> 1 if equal, else StringSimilarity of
//                                     their local names
//  * mixed numeric/string          -> NumericSimilarity when both parse as
//                                     numbers, else lowercase string match
//  * anything else                 -> StringSimilarity of lexical forms
double ValueSimilarity(const rdf::Term& a, const rdf::Term& b,
                       const SimilarityOptions& options = {});

// The local name of an IRI: the part after the last '#' or '/'.
std::string_view IriLocalName(std::string_view iri);

// Rescales a raw normalized-Levenshtein score above `floor` to [0, 1].
double RescaleAboveFloor(double raw, double floor);

// Calibrated string similarity: max(rescaled Levenshtein, token Jaccard)
// on lowercase inputs.
double CalibratedStringSimilarity(std::string_view a, std::string_view b,
                                  double noise_floor);

}  // namespace alex::sim

#endif  // ALEX_SIMILARITY_VALUE_SIMILARITY_H_
