// Source selection for federated queries (the FedX-style first step):
// determine, per triple pattern, which sources can possibly contribute
// matches, using predicate- and constant-existence probes against each
// source's dictionary.
#ifndef ALEX_FEDERATION_SOURCE_SELECTION_H_
#define ALEX_FEDERATION_SOURCE_SELECTION_H_

#include <vector>

#include "rdf/triple_store.h"
#include "sparql/algebra.h"

namespace alex::fed {

// For each pattern of `query` (same order), the indexes into `sources` that
// can match it. A constant predicate/subject/object that a source has never
// seen rules that source out for the pattern.
std::vector<std::vector<size_t>> SelectSources(
    const sparql::Query& query,
    const std::vector<const rdf::TripleStore*>& sources);

// Same, for an explicit pattern list (used per UNION alternative).
std::vector<std::vector<size_t>> SelectSourcesFor(
    const std::vector<sparql::TriplePattern>& patterns,
    const std::vector<const rdf::TripleStore*>& sources);

// Source capability for a single pattern.
bool SourceCanMatch(const sparql::TriplePattern& pattern,
                    const rdf::TripleStore& source);

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_SOURCE_SELECTION_H_
