#include "federation/federated_engine.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_set>

#include "common/thread_pool.h"
#include "federation/query_cache.h"
#include "federation/source_selection.h"
#include "sparql/executor.h"
#include "sparql/parser.h"

namespace alex::fed {
namespace {

using rdf::TermId;
using rdf::Triple;
using rdf::TripleStore;
using sparql::Binding;
using sparql::PatternNode;
using sparql::Query;
using sparql::TriplePattern;

// A way to satisfy one pattern position in one source: the id to search for
// (nullopt = leave unbound) plus the link consumed if the id is a sameAs
// counterpart of the originally bound value.
struct PositionChoice {
  std::optional<TermId> id;
  std::optional<linking::Link> link;
};

class FederatedEvaluator {
 public:
  // `consulted` (optional) collects every IRI whose link neighborhood is
  // consulted. `top_source` (optional) restricts the FIRST join step to one
  // source, which partitions the evaluation across sources: the sequential
  // enumeration is exactly the concatenation of the per-source runs in
  // ascending source order.
  FederatedEvaluator(const Query& query,
                     const std::vector<TriplePattern>& patterns,
                     const std::vector<const TripleStore*>& sources,
                     const LinkSet& links, const FederatedOptions& options,
                     std::unordered_set<std::string>* consulted = nullptr,
                     std::optional<size_t> top_source = std::nullopt)
      : query_(query),
        patterns_(patterns),
        sources_(sources),
        links_(links),
        options_(options),
        consulted_(consulted),
        top_source_(top_source) {
    selected_ = SelectSourcesFor(patterns, sources);
  }

  // When false, answers carry the full binding instead of the projected
  // one (used while OPTIONAL groups still have to be joined).
  void set_project(bool project) { project_ = project; }

  // Evaluates the patterns starting from `seed_binding` (empty for a
  // top-level run). `seed_provenance` is prepended to every answer's
  // provenance. Sets *matched when at least one solution was emitted.
  Status Run(std::vector<FederatedAnswer>* out,
             const Binding& seed_binding = {},
             const std::vector<linking::Link>& seed_provenance = {},
             bool* matched = nullptr) {
    out_ = out;
    std::vector<size_t> remaining(patterns_.size());
    for (size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;
    Binding binding = seed_binding;
    std::vector<linking::Link> provenance = seed_provenance;
    emitted_ = false;
    Status st = Recurse(remaining, &binding, &provenance);
    if (matched != nullptr) *matched = emitted_;
    return st;
  }

 private:
  // Enumerates the ways to satisfy `node` against `source`: bound values may
  // be rewritten to their sameAs counterparts, each choice recording the
  // link it uses.
  std::vector<PositionChoice> ChoicesFor(const PatternNode& node,
                                         const Binding& binding,
                                         const TripleStore& source,
                                         bool allow_bridge) const {
    std::vector<PositionChoice> choices;
    const rdf::Term* term = nullptr;
    if (node.is_variable) {
      auto it = binding.find(node.variable);
      if (it == binding.end()) {
        choices.push_back(PositionChoice{std::nullopt, std::nullopt});
        return choices;
      }
      term = &it->second;
    } else {
      term = &node.term;
    }
    if (std::optional<TermId> id = source.dictionary().Lookup(*term)) {
      choices.push_back(PositionChoice{*id, std::nullopt});
    }
    if (allow_bridge && term->is_iri()) {
      const std::string& iri = term->lexical();
      // The answer set depends on the link set exactly through these
      // neighborhood reads — record them (hits and misses alike) so cached
      // results can be invalidated precisely.
      if (consulted_ != nullptr) consulted_->insert(iri);
      for (const std::string& right : links_.RightsOf(iri)) {
        AddCounterpart(iri, right, /*left_is_original=*/true, source,
                       &choices);
      }
      for (const std::string& left : links_.LeftsOf(iri)) {
        AddCounterpart(left, iri, /*left_is_original=*/false, source,
                       &choices);
      }
    }
    return choices;
  }

  void AddCounterpart(const std::string& left, const std::string& right,
                      bool left_is_original, const TripleStore& source,
                      std::vector<PositionChoice>* choices) const {
    const std::string& counterpart = left_is_original ? right : left;
    std::optional<TermId> id =
        source.dictionary().Lookup(rdf::Term::Iri(counterpart));
    if (!id) return;
    linking::Link link;
    link.left = left;
    link.right = right;
    choices->push_back(PositionChoice{*id, link});
  }

  Status Recurse(std::vector<size_t> remaining, Binding* binding,
                 std::vector<linking::Link>* provenance) {
    if (done_) return Status::Ok();
    if (remaining.empty()) {
      for (const auto& filter : query_.filters) {
        if (!sparql::EvalFilter(*filter, *binding)) return Status::Ok();
      }
      FederatedAnswer answer;
      answer.binding = project_ ? sparql::Project(query_, *binding)
                                : *binding;
      answer.links_used = *provenance;
      std::sort(answer.links_used.begin(), answer.links_used.end());
      answer.links_used.erase(
          std::unique(answer.links_used.begin(), answer.links_used.end()),
          answer.links_used.end());
      out_->push_back(std::move(answer));
      emitted_ = true;
      if (out_->size() >= options_.max_rows) done_ = true;
      if (query_.is_ask) done_ = true;
      return Status::Ok();
    }
    // Most selective remaining pattern first.
    size_t best_pos = 0;
    int best_unbound = 4;
    for (size_t i = 0; i < remaining.size(); ++i) {
      int unbound = patterns_[remaining[i]].UnboundCount(*binding);
      if (unbound < best_unbound) {
        best_unbound = unbound;
        best_pos = i;
      }
    }
    const bool top = remaining.size() == patterns_.size();
    size_t pattern_idx = remaining[best_pos];
    remaining.erase(remaining.begin() + best_pos);
    const TriplePattern& pattern = patterns_[pattern_idx];

    for (size_t source_idx : selected_[pattern_idx]) {
      if (top && top_source_.has_value() && source_idx != *top_source_) {
        continue;
      }
      const TripleStore& source = *sources_[source_idx];
      // Subjects and objects may be bridged across sources; predicates are
      // vocabulary, never bridged.
      std::vector<PositionChoice> s_choices =
          ChoicesFor(pattern.subject, *binding, source, true);
      std::vector<PositionChoice> p_choices =
          ChoicesFor(pattern.predicate, *binding, source, false);
      std::vector<PositionChoice> o_choices =
          ChoicesFor(pattern.object, *binding, source, true);
      for (const PositionChoice& sc : s_choices) {
        for (const PositionChoice& pc : p_choices) {
          for (const PositionChoice& oc : o_choices) {
            Status st = MatchOne(pattern, source, sc, pc, oc, remaining,
                                 binding, provenance);
            if (!st.ok()) return st;
            if (done_) return Status::Ok();
          }
        }
      }
    }
    return Status::Ok();
  }

  Status MatchOne(const TriplePattern& pattern, const TripleStore& source,
                  const PositionChoice& sc, const PositionChoice& pc,
                  const PositionChoice& oc, std::vector<size_t>& remaining,
                  Binding* binding, std::vector<linking::Link>* provenance) {
    size_t links_pushed = 0;
    for (const PositionChoice* choice : {&sc, &pc, &oc}) {
      if (choice->link) {
        provenance->push_back(*choice->link);
        ++links_pushed;
      }
    }
    const rdf::Dictionary& dict = source.dictionary();
    for (const Triple& t : source.Match(sc.id, pc.id, oc.id)) {
      if (done_) break;
      std::vector<std::string> added;
      auto bind_new = [&](const PatternNode& node, TermId id,
                          const PositionChoice& choice) {
        // Only bind variables that were previously unbound; bound variables
        // were already baked into the search ids.
        if (!node.is_variable || choice.id.has_value()) return;
        binding->emplace(node.variable, dict.term(id));
        added.push_back(node.variable);
      };
      bind_new(pattern.subject, t.subject, sc);
      bind_new(pattern.predicate, t.predicate, pc);
      bind_new(pattern.object, t.object, oc);
      Status st = Recurse(remaining, binding, provenance);
      for (const std::string& var : added) binding->erase(var);
      if (!st.ok()) return st;
    }
    for (size_t i = 0; i < links_pushed; ++i) provenance->pop_back();
    return Status::Ok();
  }

  const Query& query_;
  const std::vector<TriplePattern>& patterns_;
  const std::vector<const TripleStore*>& sources_;
  const LinkSet& links_;
  const FederatedOptions& options_;
  std::unordered_set<std::string>* consulted_ = nullptr;
  std::optional<size_t> top_source_;
  std::vector<std::vector<size_t>> selected_;
  std::vector<FederatedAnswer>* out_ = nullptr;
  bool done_ = false;
  bool emitted_ = false;
  bool project_ = true;
};

}  // namespace

Result<std::vector<FederatedAnswer>> FederatedEngine::ExecuteText(
    const std::string& query_text, const FederatedOptions& options) const {
  if (cache_ != nullptr) {
    const uint64_t fingerprint =
        QueryFingerprint(query_text, options.max_rows);
    if (const std::vector<FederatedAnswer>* hit = cache_->Lookup(fingerprint)) {
      return *hit;
    }
    Result<Query> query = sparql::ParseQuery(query_text);
    if (!query.ok()) return query.status();
    std::unordered_set<std::string> consulted;
    Result<std::vector<FederatedAnswer>> answers =
        ExecuteInternal(query.value(), options, &consulted);
    if (answers.ok()) {
      cache_->Insert(fingerprint, answers.value(), consulted);
    }
    return answers;
  }
  Result<Query> query = sparql::ParseQuery(query_text);
  if (!query.ok()) return query.status();
  return Execute(query.value(), options);
}

Result<std::vector<FederatedAnswer>> FederatedEngine::Execute(
    const Query& query, const FederatedOptions& options) const {
  return ExecuteInternal(query, options, nullptr);
}

Result<std::vector<FederatedAnswer>> FederatedEngine::ExecuteInternal(
    const Query& query, const FederatedOptions& options,
    std::unordered_set<std::string>* consulted) const {
  if (!query.aggregates.empty()) {
    return Status::Unimplemented(
        "aggregates are not supported in federated queries");
  }
  std::vector<FederatedAnswer> answers;
  const bool has_optionals = !query.optionals.empty();
  for (const std::vector<TriplePattern>* patterns : query.Alternatives()) {
    // Rows this alternative may add. The sequential evaluator caps the
    // SHARED answer vector at max_rows but only notices after an emission,
    // so an alternative starting at or past the cap still adds one row;
    // the parallel merge below replicates that exactly.
    const size_t base = answers.size();
    size_t budget = base >= options.max_rows ? 1 : options.max_rows - base;
    if (query.is_ask) budget = 1;
    const bool parallel = options.pool != nullptr &&
                          options.pool->num_threads() > 1 &&
                          sources_.size() > 1 && !patterns->empty();
    if (!parallel) {
      FederatedEvaluator evaluator(query, *patterns, sources_, *links_,
                                   options, consulted);
      evaluator.set_project(!has_optionals);
      Status st = evaluator.Run(&answers);
      if (!st.ok()) return st;
    } else {
      // One branch per source: each evaluates the whole group with its
      // first join step pinned to that source. Concatenating the branch
      // outputs in ascending source order reproduces the sequential
      // enumeration, and no branch can place more than max_rows rows into
      // the first `budget` merged rows, so the truncation below yields a
      // result bitwise-identical to the single-threaded run.
      struct Branch {
        std::vector<FederatedAnswer> answers;
        std::unordered_set<std::string> consulted;
        Status status = Status::Ok();
      };
      std::vector<Branch> branches(sources_.size());
      // Force index builds up front; concurrent first reads of a freshly
      // written store are not thread-safe (see TripleStore::Scan).
      for (const rdf::TripleStore* source : sources_) source->size();
      for (size_t s = 0; s < sources_.size(); ++s) {
        options.pool->Schedule([&, s, patterns] {
          Branch& branch = branches[s];
          FederatedEvaluator evaluator(
              query, *patterns, sources_, *links_, options,
              consulted != nullptr ? &branch.consulted : nullptr, s);
          evaluator.set_project(!has_optionals);
          branch.status = evaluator.Run(&branch.answers);
        });
      }
      options.pool->Wait();
      for (Branch& branch : branches) {
        if (!branch.status.ok()) return branch.status;
        for (FederatedAnswer& answer : branch.answers) {
          answers.push_back(std::move(answer));
        }
        if (consulted != nullptr) {
          consulted->insert(branch.consulted.begin(), branch.consulted.end());
        }
      }
    }
    if (answers.size() > base + budget) answers.resize(base + budget);
    if (query.is_ask && !answers.empty()) break;
  }
  // OPTIONAL groups: left-outer-join each group against the answers so
  // far, bridging across sources exactly like required patterns.
  if (has_optionals) {
    for (const std::vector<TriplePattern>& group : query.optionals) {
      std::vector<FederatedAnswer> extended;
      for (const FederatedAnswer& answer : answers) {
        FederatedEvaluator evaluator(query, group, sources_, *links_,
                                     options, consulted);
        evaluator.set_project(false);
        bool matched = false;
        Status st = evaluator.Run(&extended, answer.binding,
                                  answer.links_used, &matched);
        if (!st.ok()) return st;
        if (!matched) extended.push_back(answer);
      }
      answers = std::move(extended);
    }
    for (FederatedAnswer& answer : answers) {
      answer.binding = sparql::Project(query, answer.binding);
    }
  }
  if (query.distinct) {
    std::set<std::pair<Binding, std::vector<linking::Link>>> seen;
    std::vector<FederatedAnswer> unique;
    for (FederatedAnswer& a : answers) {
      if (seen.insert({a.binding, a.links_used}).second) {
        unique.push_back(std::move(a));
      }
    }
    answers = std::move(unique);
  }
  if (!query.order_by.empty()) {
    std::stable_sort(answers.begin(), answers.end(),
                     [&query](const FederatedAnswer& a,
                              const FederatedAnswer& b) {
                       return sparql::CompareBindingsForOrder(
                                  a.binding, b.binding, query.order_by) < 0;
                     });
  }
  if (query.offset > 0) {
    answers.erase(answers.begin(),
                  answers.begin() +
                      std::min(query.offset, answers.size()));
  }
  if (query.limit && answers.size() > *query.limit) {
    answers.resize(*query.limit);
  }
  return answers;
}

}  // namespace alex::fed
