#include "federation/federated_engine.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/thread_pool.h"
#include "federation/query_cache.h"
#include "federation/source_selection.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/plan_cache.h"

namespace alex::fed {
namespace {

using rdf::TermId;
using rdf::Triple;
using rdf::TripleStore;
using sparql::Binding;
using sparql::PatternNode;
using sparql::Query;
using sparql::TriplePattern;

uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t PatternKey(rdf::TermPattern t) {
  // Disambiguate "unbound" from term id 0.
  return t.has_value() ? static_cast<uint64_t>(*t) + 1 : 0;
}

// Per-branch fault accounting. Everything in here is a commutative monoid
// over the multiset of probes (sums, ORs, per-endpoint bit unions), so
// merging branch logs in any order yields identical totals — the pillar of
// thread-count-invariant failure accounting.
struct ProbeLog {
  explicit ProbeLog(size_t num_endpoints)
      : probed(num_endpoints, 0),
        failed(num_endpoints, 0),
        degraded(num_endpoints, 0),
        denied(num_endpoints, 0) {}

  size_t probes = 0;          // probe attempts issued (retries included)
  size_t retries = 0;
  size_t short_circuits = 0;  // probes skipped by an open breaker
  int64_t micros = 0;         // latencies + retry backoffs
  bool truncated = false;     // some probe result was cut short
  bool row_capped = false;    // the max_rows cap stopped enumeration
  std::vector<uint8_t> probed;    // endpoint was actually probed
  std::vector<uint8_t> failed;    // some probe of it ultimately failed
  std::vector<uint8_t> degraded;  // it answered, but truncated
  std::vector<uint8_t> denied;    // open breaker short-circuited it

  void MergeFrom(const ProbeLog& other) {
    probes += other.probes;
    retries += other.retries;
    short_circuits += other.short_circuits;
    micros += other.micros;
    truncated = truncated || other.truncated;
    row_capped = row_capped || other.row_capped;
    for (size_t i = 0; i < probed.size(); ++i) {
      probed[i] |= other.probed[i];
      failed[i] |= other.failed[i];
      degraded[i] |= other.degraded[i];
      denied[i] |= other.denied[i];
    }
  }
};

// Issues pattern probes for one evaluation branch. On the reliable path it
// is a plain passthrough (the seed engine, bit-for-bit); on the resilient
// path it short-circuits breaker-open endpoints and retries retryable
// failures with deterministic exponential backoff, charging all virtual
// time to its ProbeLog. Returns true when the probe produced a result;
// false means the endpoint contributes no matches (partial-result
// semantics: evaluation continues without it).
class ProbeDriver {
 public:
  ProbeDriver(const std::vector<Endpoint*>& endpoints, bool resilient,
              const RetryPolicy& retry, const std::vector<uint8_t>& allowed,
              uint64_t query_salt, ProbeLog* log)
      : endpoints_(endpoints),
        resilient_(resilient),
        retry_(retry),
        allowed_(allowed),
        query_salt_(query_salt),
        log_(log) {}

  bool Probe(size_t source, rdf::TermPattern s, rdf::TermPattern p,
             rdf::TermPattern o, ProbeResult* out) {
    if (!resilient_) {
      return endpoints_[source]->Probe(s, p, o, query_salt_, 0, out).ok();
    }
    if (!allowed_[source]) {
      ++log_->short_circuits;
      log_->denied[source] = 1;
      return false;
    }
    const uint64_t jitter_key = MixKey(
        query_salt_ ^
        MixKey(static_cast<uint64_t>(source) ^
               MixKey(PatternKey(s) ^
                      MixKey(PatternKey(p) ^ MixKey(PatternKey(o))))));
    for (int attempt = 0;; ++attempt) {
      ++log_->probes;
      log_->probed[source] = 1;
      ProbeResult result;
      Status st = endpoints_[source]->Probe(s, p, o, query_salt_, attempt,
                                            &result);
      log_->micros += result.latency_micros;
      if (st.ok()) {
        if (result.truncated) {
          log_->truncated = true;
          log_->degraded[source] = 1;
        }
        *out = std::move(result);
        return true;
      }
      if (attempt + 1 >= retry_.max_attempts || !IsRetryable(st.code())) {
        log_->failed[source] = 1;
        return false;
      }
      ++log_->retries;
      log_->micros += BackoffMicros(retry_, attempt + 1, jitter_key);
    }
  }

  ProbeLog* log() { return log_; }

 private:
  const std::vector<Endpoint*>& endpoints_;
  bool resilient_;
  const RetryPolicy& retry_;
  const std::vector<uint8_t>& allowed_;
  uint64_t query_salt_;
  ProbeLog* log_;
};

// A way to satisfy one pattern position in one source: the id to search for
// (nullopt = leave unbound) plus the link consumed if the id is a sameAs
// counterpart of the originally bound value.
struct PositionChoice {
  std::optional<TermId> id;
  std::optional<linking::Link> link;
};

class FederatedEvaluator {
 public:
  // `consulted` (optional) collects every IRI whose link neighborhood is
  // consulted. `top_source` (optional) restricts the FIRST join step to one
  // source, which partitions the evaluation across sources: the sequential
  // enumeration is exactly the concatenation of the per-source runs in
  // ascending source order. All store reads go through `driver`, which
  // models the (possibly fallible) endpoint round trips.
  FederatedEvaluator(const Query& query,
                     const std::vector<TriplePattern>& patterns,
                     const std::vector<const TripleStore*>& sources,
                     const LinkView& links, const FederatedOptions& options,
                     ProbeDriver* driver,
                     std::unordered_set<std::string>* consulted = nullptr,
                     std::optional<size_t> top_source = std::nullopt)
      : query_(query),
        patterns_(patterns),
        sources_(sources),
        links_(links),
        options_(options),
        driver_(driver),
        consulted_(consulted),
        top_source_(top_source) {
    selected_ = SelectSourcesFor(patterns, sources);
  }

  // When false, answers carry the full binding instead of the projected
  // one (used while OPTIONAL groups still have to be joined).
  void set_project(bool project) { project_ = project; }

  // Evaluates the patterns starting from `seed_binding` (empty for a
  // top-level run). `seed_provenance` is prepended to every answer's
  // provenance. Sets *matched when at least one solution was emitted.
  Status Run(std::vector<FederatedAnswer>* out,
             const Binding& seed_binding = {},
             const std::vector<linking::Link>& seed_provenance = {},
             bool* matched = nullptr) {
    out_ = out;
    std::vector<size_t> remaining(patterns_.size());
    for (size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;
    Binding binding = seed_binding;
    std::vector<linking::Link> provenance = seed_provenance;
    emitted_ = false;
    Status st = Recurse(remaining, &binding, &provenance);
    if (matched != nullptr) *matched = emitted_;
    return st;
  }

 private:
  // Enumerates the ways to satisfy `node` against `source`: bound values may
  // be rewritten to their sameAs counterparts, each choice recording the
  // link it uses.
  std::vector<PositionChoice> ChoicesFor(const PatternNode& node,
                                         const Binding& binding,
                                         const TripleStore& source,
                                         bool allow_bridge) const {
    std::vector<PositionChoice> choices;
    const rdf::Term* term = nullptr;
    if (node.is_variable) {
      auto it = binding.find(node.variable);
      if (it == binding.end()) {
        choices.push_back(PositionChoice{std::nullopt, std::nullopt});
        return choices;
      }
      term = &it->second;
    } else {
      term = &node.term;
    }
    if (std::optional<TermId> id = source.dictionary().Lookup(*term)) {
      choices.push_back(PositionChoice{*id, std::nullopt});
    }
    if (allow_bridge && term->is_iri()) {
      const std::string& iri = term->lexical();
      // The answer set depends on the link set exactly through these
      // neighborhood reads — record them (hits and misses alike) so cached
      // results can be invalidated precisely.
      if (consulted_ != nullptr) consulted_->insert(iri);
      for (const std::string& right : links_.RightsOf(iri)) {
        AddCounterpart(iri, right, /*left_is_original=*/true, source,
                       &choices);
      }
      for (const std::string& left : links_.LeftsOf(iri)) {
        AddCounterpart(left, iri, /*left_is_original=*/false, source,
                       &choices);
      }
    }
    return choices;
  }

  void AddCounterpart(const std::string& left, const std::string& right,
                      bool left_is_original, const TripleStore& source,
                      std::vector<PositionChoice>* choices) const {
    const std::string& counterpart = left_is_original ? right : left;
    std::optional<TermId> id =
        source.dictionary().Lookup(rdf::Term::Iri(counterpart));
    if (!id) return;
    linking::Link link;
    link.left = left;
    link.right = right;
    choices->push_back(PositionChoice{*id, link});
  }

  Status Recurse(std::vector<size_t> remaining, Binding* binding,
                 std::vector<linking::Link>* provenance) {
    if (done_) return Status::Ok();
    if (remaining.empty()) {
      for (const auto& filter : query_.filters) {
        if (!sparql::EvalFilter(*filter, *binding)) return Status::Ok();
      }
      FederatedAnswer answer;
      answer.binding = project_ ? sparql::Project(query_, *binding)
                                : *binding;
      answer.links_used = *provenance;
      std::sort(answer.links_used.begin(), answer.links_used.end());
      answer.links_used.erase(
          std::unique(answer.links_used.begin(), answer.links_used.end()),
          answer.links_used.end());
      out_->push_back(std::move(answer));
      emitted_ = true;
      if (out_->size() >= options_.max_rows) {
        done_ = true;
        // ASK completes on its first answer; everything else was cut off.
        if (!query_.is_ask) driver_->log()->row_capped = true;
      }
      if (query_.is_ask) done_ = true;
      return Status::Ok();
    }
    // Most selective remaining pattern first.
    size_t best_pos = 0;
    int best_unbound = 4;
    for (size_t i = 0; i < remaining.size(); ++i) {
      int unbound = patterns_[remaining[i]].UnboundCount(*binding);
      if (unbound < best_unbound) {
        best_unbound = unbound;
        best_pos = i;
      }
    }
    const bool top = remaining.size() == patterns_.size();
    size_t pattern_idx = remaining[best_pos];
    remaining.erase(remaining.begin() + best_pos);
    const TriplePattern& pattern = patterns_[pattern_idx];

    for (size_t source_idx : selected_[pattern_idx]) {
      if (top && top_source_.has_value() && source_idx != *top_source_) {
        continue;
      }
      const TripleStore& source = *sources_[source_idx];
      // Subjects and objects may be bridged across sources; predicates are
      // vocabulary, never bridged.
      std::vector<PositionChoice> s_choices =
          ChoicesFor(pattern.subject, *binding, source, true);
      std::vector<PositionChoice> p_choices =
          ChoicesFor(pattern.predicate, *binding, source, false);
      std::vector<PositionChoice> o_choices =
          ChoicesFor(pattern.object, *binding, source, true);
      for (const PositionChoice& sc : s_choices) {
        for (const PositionChoice& pc : p_choices) {
          for (const PositionChoice& oc : o_choices) {
            Status st = MatchOne(pattern, source_idx, sc, pc, oc, remaining,
                                 binding, provenance);
            if (!st.ok()) return st;
            if (done_) return Status::Ok();
          }
        }
      }
    }
    return Status::Ok();
  }

  Status MatchOne(const TriplePattern& pattern, size_t source_idx,
                  const PositionChoice& sc, const PositionChoice& pc,
                  const PositionChoice& oc, std::vector<size_t>& remaining,
                  Binding* binding, std::vector<linking::Link>* provenance) {
    size_t links_pushed = 0;
    for (const PositionChoice* choice : {&sc, &pc, &oc}) {
      if (choice->link) {
        provenance->push_back(*choice->link);
        ++links_pushed;
      }
    }
    const rdf::Dictionary& dict = sources_[source_idx]->dictionary();
    // A failed probe contributes no matches; the join continues without
    // this endpoint and the degradation is recorded in the driver's log.
    ProbeResult probe;
    if (driver_->Probe(source_idx, sc.id, pc.id, oc.id, &probe)) {
      for (const Triple& t : probe.triples) {
        if (done_) break;
        std::vector<std::string> added;
        auto bind_new = [&](const PatternNode& node, TermId id,
                            const PositionChoice& choice) {
          // Only bind variables that were previously unbound; bound
          // variables were already baked into the search ids.
          if (!node.is_variable || choice.id.has_value()) return;
          binding->emplace(node.variable, dict.term(id));
          added.push_back(node.variable);
        };
        bind_new(pattern.subject, t.subject, sc);
        bind_new(pattern.predicate, t.predicate, pc);
        bind_new(pattern.object, t.object, oc);
        Status st = Recurse(remaining, binding, provenance);
        for (const std::string& var : added) binding->erase(var);
        if (!st.ok()) return st;
      }
    }
    for (size_t i = 0; i < links_pushed; ++i) provenance->pop_back();
    return Status::Ok();
  }

  const Query& query_;
  const std::vector<TriplePattern>& patterns_;
  const std::vector<const TripleStore*>& sources_;
  const LinkView& links_;
  const FederatedOptions& options_;
  ProbeDriver* driver_;
  std::unordered_set<std::string>* consulted_ = nullptr;
  std::optional<size_t> top_source_;
  std::vector<std::vector<size_t>> selected_;
  std::vector<FederatedAnswer>* out_ = nullptr;
  bool done_ = false;
  bool emitted_ = false;
  bool project_ = true;
};

}  // namespace

FederatedEngine::FederatedEngine(std::vector<const rdf::TripleStore*> sources,
                                 const LinkView* links)
    : links_(links) {
  owned_endpoints_.reserve(sources.size());
  endpoints_.reserve(sources.size());
  sources_.reserve(sources.size());
  for (const rdf::TripleStore* store : sources) {
    owned_endpoints_.push_back(std::make_unique<LocalEndpoint>(store));
    endpoints_.push_back(owned_endpoints_.back().get());
    sources_.push_back(store);
  }
  health_ =
      std::make_unique<HealthTracker>(endpoints_.size(), resilience_.breaker);
}

FederatedEngine::FederatedEngine(std::span<Endpoint* const> endpoints,
                                 const LinkView* links)
    : endpoints_(endpoints.begin(), endpoints.end()), links_(links) {
  sources_.reserve(endpoints_.size());
  for (const Endpoint* endpoint : endpoints_) {
    sources_.push_back(&endpoint->store());
    if (!endpoint->reliable()) resilient_ = true;
  }
  health_ =
      std::make_unique<HealthTracker>(endpoints_.size(), resilience_.breaker);
}

void FederatedEngine::set_resilience(const Resilience& resilience) {
  resilience_ = resilience;
  health_ =
      std::make_unique<HealthTracker>(endpoints_.size(), resilience_.breaker);
}

FederatedEngine::FaultStats FederatedEngine::TakeFaultStats() {
  FaultStats stats = fault_stats_;
  fault_stats_ = FaultStats{};
  return stats;
}

Result<FederatedResult> FederatedEngine::ExecuteText(
    const std::string& query_text, const FederatedOptions& options) const {
  // The fingerprint doubles as the query's fault salt, so re-executions of
  // the same text (cache off, or cache miss after invalidation) replay the
  // exact same fault universe — cached and uncached series stay identical.
  const uint64_t fingerprint = QueryFingerprint(query_text, options.max_rows);
  // Parse through the attached plan cache when one is present: the episode
  // loop replays the same texts every epoch, and parsing is deterministic,
  // so reuse cannot change any answer.
  auto parse = [&](Result<Query>* local) -> Result<const Query*> {
    if (plan_cache_ != nullptr) return plan_cache_->GetParsed(query_text);
    *local = sparql::ParseQuery(query_text);
    if (!local->ok()) return local->status();
    return static_cast<const Query*>(&local->value());
  };
  if (cache_ != nullptr) {
    if (auto hit = cache_->Lookup(fingerprint)) {
      FederatedResult result;
      result.answers = *hit;
      result.from_cache = true;
      return result;
    }
    Result<Query> local = Query();
    Result<const Query*> query = parse(&local);
    if (!query.ok()) return query.status();
    std::unordered_set<std::string> consulted;
    Result<FederatedResult> result =
        ExecuteInternal(*query.value(), options, fingerprint, &consulted);
    // Only complete results are admitted: a degraded or row-capped answer
    // set must never shadow the full one once the endpoint recovers.
    if (result.ok() && result.value().complete) {
      cache_->Insert(fingerprint, result.value().answers, consulted);
    }
    return result;
  }
  Result<Query> local = Query();
  Result<const Query*> query = parse(&local);
  if (!query.ok()) return query.status();
  return ExecuteInternal(*query.value(), options, fingerprint, nullptr);
}

Result<FederatedResult> FederatedEngine::Execute(
    const Query& query, const FederatedOptions& options) const {
  return ExecuteInternal(query, options, options.fault_salt, nullptr);
}

Result<FederatedResult> FederatedEngine::ExecuteInternal(
    const Query& query, const FederatedOptions& options, uint64_t fault_salt,
    std::unordered_set<std::string>* consulted) const {
  if (!query.aggregates.empty()) {
    return Status::Unimplemented(
        "aggregates are not supported in federated queries");
  }
  const size_t num_endpoints = endpoints_.size();
  ProbeLog log(num_endpoints);
  // Breaker snapshot for the whole query: every probe sees the same
  // allow/deny decision, so per-source branches cannot race transitions.
  // Counters are snapshotted first because AllowProbe itself may perform
  // the open -> half-open transition.
  EndpointHealth::Counters counters_before;
  std::vector<uint8_t> allowed(num_endpoints, 1);
  if (resilient_) {
    counters_before = health_->Totals();
    const int64_t now = clock_.NowMicros();
    for (size_t i = 0; i < num_endpoints; ++i) {
      allowed[i] = health_->endpoint(i).AllowProbe(now) ? 1 : 0;
    }
  }
  ProbeDriver driver(endpoints_, resilient_, resilience_.retry, allowed,
                     fault_salt, &log);

  std::vector<FederatedAnswer> answers;
  const bool has_optionals = !query.optionals.empty();
  for (const std::vector<TriplePattern>* patterns : query.Alternatives()) {
    // Rows this alternative may add. The sequential evaluator caps the
    // SHARED answer vector at max_rows but only notices after an emission,
    // so an alternative starting at or past the cap still adds one row;
    // the branch merge below replicates that exactly.
    const size_t base = answers.size();
    size_t budget = base >= options.max_rows ? 1 : options.max_rows - base;
    if (query.is_ask) budget = 1;
    // Resilient executions always decompose into per-source branches (run
    // inline when no pool is attached) so the multiset of probes — and
    // therefore every fault, retry and latency charge — is identical at
    // any thread count.
    const bool branch_mode =
        sources_.size() > 1 && !patterns->empty() &&
        (resilient_ || (options.pool != nullptr &&
                        options.pool->num_threads() > 1));
    if (!branch_mode) {
      FederatedEvaluator evaluator(query, *patterns, sources_, *links_,
                                   options, &driver, consulted);
      evaluator.set_project(!has_optionals);
      Status st = evaluator.Run(&answers);
      if (!st.ok()) return st;
    } else {
      // One branch per source: each evaluates the whole group with its
      // first join step pinned to that source. Concatenating the branch
      // outputs in ascending source order reproduces the sequential
      // enumeration, and no branch can place more than max_rows rows into
      // the first `budget` merged rows, so the truncation below yields a
      // result bitwise-identical to the single-threaded run.
      struct Branch {
        explicit Branch(size_t num_endpoints) : log(num_endpoints) {}
        std::vector<FederatedAnswer> answers;
        std::unordered_set<std::string> consulted;
        ProbeLog log;
        Status status = Status::Ok();
      };
      std::vector<Branch> branches;
      branches.reserve(sources_.size());
      for (size_t s = 0; s < sources_.size(); ++s) {
        branches.emplace_back(num_endpoints);
      }
      // Force index builds up front; concurrent first reads of a freshly
      // written store are not thread-safe (see TripleStore::Scan).
      for (const rdf::TripleStore* source : sources_) source->size();
      auto run_branch = [&, patterns](size_t s) {
        Branch& branch = branches[s];
        ProbeDriver branch_driver(endpoints_, resilient_, resilience_.retry,
                                  allowed, fault_salt, &branch.log);
        FederatedEvaluator evaluator(
            query, *patterns, sources_, *links_, options, &branch_driver,
            consulted != nullptr ? &branch.consulted : nullptr, s);
        evaluator.set_project(!has_optionals);
        branch.status = evaluator.Run(&branch.answers);
      };
      if (options.pool != nullptr && options.pool->num_threads() > 1) {
        for (size_t s = 0; s < sources_.size(); ++s) {
          options.pool->Schedule([&run_branch, s] { run_branch(s); });
        }
        options.pool->Wait();
      } else {
        for (size_t s = 0; s < sources_.size(); ++s) run_branch(s);
      }
      for (Branch& branch : branches) {
        if (!branch.status.ok()) return branch.status;
        for (FederatedAnswer& answer : branch.answers) {
          answers.push_back(std::move(answer));
        }
        if (consulted != nullptr) {
          consulted->insert(branch.consulted.begin(), branch.consulted.end());
        }
        log.MergeFrom(branch.log);
      }
    }
    if (answers.size() > base + budget) {
      answers.resize(base + budget);
      if (!query.is_ask) log.row_capped = true;
    }
    if (query.is_ask && !answers.empty()) break;
  }
  // OPTIONAL groups: left-outer-join each group against the answers so
  // far, bridging across sources exactly like required patterns.
  if (has_optionals) {
    for (const std::vector<TriplePattern>& group : query.optionals) {
      std::vector<FederatedAnswer> extended;
      for (const FederatedAnswer& answer : answers) {
        FederatedEvaluator evaluator(query, group, sources_, *links_,
                                     options, &driver, consulted);
        evaluator.set_project(false);
        bool matched = false;
        Status st = evaluator.Run(&extended, answer.binding,
                                  answer.links_used, &matched);
        if (!st.ok()) return st;
        if (!matched) extended.push_back(answer);
      }
      answers = std::move(extended);
    }
    for (FederatedAnswer& answer : answers) {
      answer.binding = sparql::Project(query, answer.binding);
    }
  }
  if (query.distinct) {
    std::set<std::pair<Binding, std::vector<linking::Link>>> seen;
    std::vector<FederatedAnswer> unique;
    for (FederatedAnswer& a : answers) {
      if (seen.insert({a.binding, a.links_used}).second) {
        unique.push_back(std::move(a));
      }
    }
    answers = std::move(unique);
  }
  if (!query.order_by.empty()) {
    std::stable_sort(answers.begin(), answers.end(),
                     [&query](const FederatedAnswer& a,
                              const FederatedAnswer& b) {
                       return sparql::CompareBindingsForOrder(
                                  a.binding, b.binding, query.order_by) < 0;
                     });
  }
  if (query.offset > 0) {
    answers.erase(answers.begin(),
                  answers.begin() +
                      std::min(query.offset, answers.size()));
  }
  if (query.limit && answers.size() > *query.limit) {
    answers.resize(*query.limit);
  }

  FederatedResult result;
  result.answers = std::move(answers);
  result.row_capped = log.row_capped && !query.is_ask;
  result.truncated = log.truncated;
  if (resilient_) {
    result.probes = log.probes;
    result.retries = log.retries;
    result.short_circuits = log.short_circuits;
    result.virtual_micros = log.micros;
    if (options.deadline_micros > 0 &&
        log.micros > options.deadline_micros) {
      result.deadline_exceeded = true;
    }
    for (size_t i = 0; i < num_endpoints; ++i) {
      if (log.failed[i] || log.denied[i] || log.degraded[i]) {
        result.failed_sources.push_back(i);
      }
    }
    // One aggregate breaker verdict per endpoint actually probed, stamped
    // at the query's virtual end time, then advance the clock past it so
    // open-breaker cooldowns elapse across queries.
    const int64_t query_end = clock_.NowMicros() + log.micros;
    for (size_t i = 0; i < num_endpoints; ++i) {
      if (log.probed[i]) {
        health_->endpoint(i).ReportQuery(!log.failed[i], query_end);
      }
    }
    const EndpointHealth::Counters counters_after = health_->Totals();
    fault_stats_.breaker_opens +=
        counters_after.opens - counters_before.opens;
    fault_stats_.breaker_half_opens +=
        counters_after.half_opens - counters_before.half_opens;
    fault_stats_.breaker_closes +=
        counters_after.closes - counters_before.closes;
    clock_.Advance(log.micros + 1);
    ++fault_stats_.queries;
  }
  result.complete = !result.row_capped && !result.truncated &&
                    !result.deadline_exceeded &&
                    result.failed_sources.empty();
  if (resilient_ && !result.complete) ++fault_stats_.degraded;
  return result;
}

}  // namespace alex::fed
