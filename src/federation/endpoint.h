// The endpoint abstraction between FederatedEngine and rdf::TripleStore.
//
// ALEX's premise is federated querying over *remote* LOD endpoints (§3.2),
// but the seed engine treated every source as an infallible in-process
// TripleStore. An Endpoint models what a remote source really is: local
// metadata (its dictionary, consulted for term translation and source
// selection) plus a fallible, potentially slow, potentially truncating
// pattern probe.
//
//   LocalEndpoint          - wraps a TripleStore; never fails, zero latency.
//                            Preserves the seed engine's behavior
//                            bit-for-bit.
//   FaultInjectingEndpoint - (fault_injection.h) decorates another endpoint
//                            with seeded, deterministic faults.
//
// Probe outcomes are a pure function of (endpoint, pattern, query salt,
// attempt). That statelessness is what extends the repo's determinism
// invariant to the failure domain: the multiset of probes a query issues is
// identical at any thread count, so every fault, retry and latency charge
// is too.
#ifndef ALEX_FEDERATION_ENDPOINT_H_
#define ALEX_FEDERATION_ENDPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace alex::fed {

// What one pattern probe returns beyond its Status.
struct ProbeResult {
  std::vector<rdf::Triple> triples;
  // The endpoint answered but cut the result short (only a prefix of the
  // matching triples was returned). A truncated probe makes the query
  // result incomplete.
  bool truncated = false;
  // Simulated time this call took, in virtual microseconds (0 for local
  // endpoints). Charged even when the probe fails.
  int64_t latency_micros = 0;
};

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  // The underlying store. Its dictionary and existence probes are *local*
  // metadata (the engine's catalog knowledge of the source), consulted
  // infallibly; only Probe() models the remote round trip.
  virtual const rdf::TripleStore& store() const = 0;

  // One fallible pattern probe: all triples matching (s, p, o).
  //
  // `query_salt` identifies the executing query and `attempt` is the
  // 0-based retry ordinal; deterministic endpoints derive their fault and
  // latency decisions purely from (pattern, query_salt, attempt).
  //
  // Returns OK (result in *out, possibly truncated), kUnavailable (the
  // endpoint is down or flapping; retryable), or kDeadlineExceeded (the
  // probe overran its simulated timeout; retryable).
  virtual Status Probe(rdf::TermPattern s, rdf::TermPattern p,
                       rdf::TermPattern o, uint64_t query_salt, int attempt,
                       ProbeResult* out) = 0;

  // True when Probe can fail or cost virtual time. The engine takes the
  // seed fast path (no retry/breaker/deadline bookkeeping) when every
  // endpoint is reliable.
  virtual bool reliable() const = 0;

  virtual const std::string& name() const = 0;
};

// An in-process source: the seed engine's behavior, bit-for-bit.
class LocalEndpoint final : public Endpoint {
 public:
  // `store` must outlive the endpoint.
  explicit LocalEndpoint(const rdf::TripleStore* store) : store_(store) {}

  const rdf::TripleStore& store() const override { return *store_; }

  Status Probe(rdf::TermPattern s, rdf::TermPattern p, rdf::TermPattern o,
               uint64_t query_salt, int attempt, ProbeResult* out) override;

  bool reliable() const override { return true; }

  const std::string& name() const override { return store_->name(); }

 private:
  const rdf::TripleStore* store_;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_ENDPOINT_H_
