#include "federation/health.h"

namespace alex::fed {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

BreakerState EndpointHealth::StateAt(int64_t now_micros) {
  if (state_ == BreakerState::kOpen &&
      now_micros - opened_at_micros_ >= options_.cooldown_micros) {
    state_ = BreakerState::kHalfOpen;
    half_open_successes_ = 0;
    ++counters_.half_opens;
  }
  return state_;
}

void EndpointHealth::ReportQuery(bool healthy, int64_t now_micros) {
  if (healthy) {
    ++counters_.queries_ok;
    consecutive_failures_ = 0;
    if (state_ == BreakerState::kHalfOpen &&
        ++half_open_successes_ >= options_.half_open_successes) {
      state_ = BreakerState::kClosed;
      ++counters_.closes;
    }
    return;
  }
  ++counters_.queries_failed;
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen ||
      (state_ == BreakerState::kClosed &&
       consecutive_failures_ >= options_.failure_threshold)) {
    state_ = BreakerState::kOpen;
    opened_at_micros_ = now_micros;
    ++counters_.opens;
  }
}

EndpointHealth::Counters HealthTracker::Totals() const {
  EndpointHealth::Counters totals;
  for (const EndpointHealth& endpoint : endpoints_) {
    totals.queries_ok += endpoint.counters().queries_ok;
    totals.queries_failed += endpoint.counters().queries_failed;
    totals.opens += endpoint.counters().opens;
    totals.closes += endpoint.counters().closes;
    totals.half_opens += endpoint.counters().half_opens;
  }
  return totals;
}

}  // namespace alex::fed
