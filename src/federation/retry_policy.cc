#include "federation/retry_policy.h"

#include <algorithm>
#include <cmath>

namespace alex::fed {
namespace {

// SplitMix64 finalizer: a cheap, well-mixed hash for jitter derivation.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

int64_t BackoffMicros(const RetryPolicy& policy, int attempt,
                      uint64_t jitter_key) {
  if (attempt < 1) attempt = 1;
  double base = static_cast<double>(policy.initial_backoff_micros) *
                std::pow(policy.backoff_multiplier, attempt - 1);
  base = std::min(base, static_cast<double>(policy.max_backoff_micros));
  const double jitter =
      std::clamp(policy.jitter_fraction, 0.0, 1.0);
  // Uniform in [1 - jitter, 1 + jitter], from the key alone.
  const double unit =
      static_cast<double>(Mix(jitter_key ^ static_cast<uint64_t>(attempt)) >>
                          11) /
      static_cast<double>(1ull << 53);
  const double scale = 1.0 - jitter + 2.0 * jitter * unit;
  const double delay = base * scale;
  return delay <= 0.0 ? 0 : static_cast<int64_t>(delay);
}

}  // namespace alex::fed
