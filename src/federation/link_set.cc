#include "federation/link_set.h"

#include <algorithm>

namespace alex::fed {

bool LinkSet::Add(const linking::Link& link) {
  auto [it, inserted] = links_.insert(link);
  if (!inserted) {
    if (link.score > it->score) {
      // Link identity ignores score, so re-insert with the better score.
      links_.erase(it);
      links_.insert(link);
      by_left_[link.left][link.right] = link.score;
    }
    return false;
  }
  by_left_[link.left][link.right] = link.score;
  by_right_[link.right].insert(link.left);
  return true;
}

bool LinkSet::Remove(const std::string& left, const std::string& right) {
  linking::Link probe{left, right, 0.0};
  auto it = links_.find(probe);
  if (it == links_.end()) return false;
  links_.erase(it);
  auto left_it = by_left_.find(left);
  if (left_it != by_left_.end()) {
    left_it->second.erase(right);
    if (left_it->second.empty()) by_left_.erase(left_it);
  }
  auto right_it = by_right_.find(right);
  if (right_it != by_right_.end()) {
    right_it->second.erase(left);
    if (right_it->second.empty()) by_right_.erase(right_it);
  }
  return true;
}

bool LinkSet::Contains(const std::string& left,
                       const std::string& right) const {
  return links_.count(linking::Link{left, right, 0.0}) > 0;
}

std::vector<std::string> LinkSet::RightsOf(const std::string& left) const {
  std::vector<std::string> out;
  auto it = by_left_.find(left);
  if (it == by_left_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [right, score] : it->second) out.push_back(right);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> LinkSet::LeftsOf(const std::string& right) const {
  std::vector<std::string> out;
  auto it = by_right_.find(right);
  if (it == by_right_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<linking::Link> LinkSet::All() const {
  std::vector<linking::Link> out(links_.begin(), links_.end());
  return out;
}

}  // namespace alex::fed
