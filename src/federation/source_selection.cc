#include "federation/source_selection.h"

namespace alex::fed {

bool SourceCanMatch(const sparql::TriplePattern& pattern,
                    const rdf::TripleStore& source) {
  // A constant that the source has never interned cannot match. Constant
  // objects are *not* used to rule out a source: the federated evaluator may
  // rewrite a bound entity IRI to its sameAs counterpart in this source.
  if (!pattern.predicate.is_variable &&
      !source.dictionary().Lookup(pattern.predicate.term)) {
    return false;
  }
  return true;
}

std::vector<std::vector<size_t>> SelectSourcesFor(
    const std::vector<sparql::TriplePattern>& patterns,
    const std::vector<const rdf::TripleStore*>& sources) {
  std::vector<std::vector<size_t>> selected(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (size_t s = 0; s < sources.size(); ++s) {
      if (SourceCanMatch(patterns[i], *sources[s])) {
        selected[i].push_back(s);
      }
    }
  }
  return selected;
}

std::vector<std::vector<size_t>> SelectSources(
    const sparql::Query& query,
    const std::vector<const rdf::TripleStore*>& sources) {
  return SelectSourcesFor(query.patterns, sources);
}

}  // namespace alex::fed
