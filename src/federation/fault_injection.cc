#include "federation/fault_injection.h"

#include <algorithm>

namespace alex::fed {
namespace {

// Distinct decision streams per probe. Values are arbitrary but fixed:
// changing them changes every fault universe.
enum class Stream : uint64_t {
  kOutage = 0x0u,
  kTransient = 0x1u,
  kTruncate = 0x2u,
  kTruncateKeep = 0x3u,
  kLatency = 0x4u,
  kSpike = 0x5u,
};

uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// A 64-bit draw that is a pure function of its inputs.
uint64_t Draw(uint64_t seed, uint64_t endpoint, uint64_t salt, uint64_t a,
              uint64_t b, uint64_t c, uint64_t attempt, Stream stream) {
  uint64_t h = Mix(seed ^ 0xa1e0fau);
  h = Mix(h ^ endpoint);
  h = Mix(h ^ salt);
  h = Mix(h ^ a);
  h = Mix(h ^ b);
  h = Mix(h ^ c);
  h = Mix(h ^ attempt);
  h = Mix(h ^ static_cast<uint64_t>(stream));
  return h;
}

double UnitDouble(uint64_t bits) {
  return static_cast<double>(bits >> 11) / static_cast<double>(1ull << 53);
}

uint64_t PatternKey(rdf::TermPattern t) {
  // Disambiguate "unbound" from term id 0.
  return t.has_value() ? static_cast<uint64_t>(*t) + 1 : 0;
}

}  // namespace

FaultInjectingEndpoint::FaultInjectingEndpoint(Endpoint* inner,
                                               size_t endpoint_index,
                                               const FaultProfile& profile)
    : inner_(inner), endpoint_index_(endpoint_index), profile_(profile) {
  permanently_down_ =
      profile_.permanent_outage_rate > 0.0 &&
      UnitDouble(Draw(profile_.seed, endpoint_index_, 0, 0, 0, 0, 0,
                      Stream::kOutage)) < profile_.permanent_outage_rate;
}

Status FaultInjectingEndpoint::Probe(rdf::TermPattern s, rdf::TermPattern p,
                                     rdf::TermPattern o, uint64_t query_salt,
                                     int attempt, ProbeResult* out) {
  const uint64_t a = PatternKey(s);
  const uint64_t b = PatternKey(p);
  const uint64_t c = PatternKey(o);
  const uint64_t at = static_cast<uint64_t>(attempt);
  auto draw = [&](Stream stream) {
    return Draw(profile_.seed, endpoint_index_, query_salt, a, b, c, at,
                stream);
  };

  // Latency is charged on every outcome: a down endpoint still costs the
  // round trip that discovers it is down.
  int64_t latency = profile_.base_latency_micros;
  if (profile_.latency_jitter_micros > 0) {
    latency += static_cast<int64_t>(
        draw(Stream::kLatency) %
        static_cast<uint64_t>(profile_.latency_jitter_micros + 1));
  }
  if (profile_.spike_rate > 0.0 &&
      UnitDouble(draw(Stream::kSpike)) < profile_.spike_rate) {
    latency = std::max(latency, profile_.spike_latency_micros);
  }

  if (permanently_down_) {
    out->triples.clear();
    out->truncated = false;
    out->latency_micros = latency;
    return Status::Unavailable(name() + ": permanent outage");
  }
  if (profile_.transient_error_rate > 0.0 &&
      UnitDouble(draw(Stream::kTransient)) < profile_.transient_error_rate) {
    out->triples.clear();
    out->truncated = false;
    out->latency_micros = latency;
    return Status::Unavailable(name() + ": transient failure");
  }
  if (profile_.probe_timeout_micros > 0 &&
      latency > profile_.probe_timeout_micros) {
    // The caller waited out the full timeout before giving up.
    out->triples.clear();
    out->truncated = false;
    out->latency_micros = profile_.probe_timeout_micros;
    return Status::DeadlineExceeded(name() + ": probe timed out");
  }

  Status st = inner_->Probe(s, p, o, query_salt, attempt, out);
  out->latency_micros += latency;
  if (!st.ok()) return st;

  if (profile_.truncation_rate > 0.0 && !out->triples.empty() &&
      UnitDouble(draw(Stream::kTruncate)) < profile_.truncation_rate) {
    const double keep_fraction =
        std::clamp(profile_.truncation_keep_fraction, 0.0, 1.0);
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(
               static_cast<double>(out->triples.size()) * keep_fraction));
    if (keep < out->triples.size()) {
      out->triples.resize(keep);
      out->truncated = true;
    }
  }
  return Status::Ok();
}

}  // namespace alex::fed
