// Deterministic fault injection for federation endpoints.
//
// A FaultInjectingEndpoint decorates another endpoint with the failure
// modes real LOD endpoints exhibit (cf. Umbrich et al., PAPERS.md):
//
//   * transient errors     - a probe fails with kUnavailable but a retry
//                            may succeed,
//   * permanent outages    - every probe of the endpoint fails,
//   * latency + timeouts   - probes cost virtual time; a probe whose drawn
//                            latency exceeds the timeout fails with
//                            kDeadlineExceeded,
//   * truncated results    - a probe answers with only a prefix of the
//                            matching triples.
//
// Every decision is a pure function of (profile seed, endpoint index,
// pattern ids, query salt, attempt ordinal) — no shared RNG stream, no
// wall clock. Two probes with the same identity draw the same fate
// regardless of which thread issues them or in which order, which is what
// keeps fault-seeded episode series bitwise-identical at any thread count,
// with the federated query cache on or off.
#ifndef ALEX_FEDERATION_FAULT_INJECTION_H_
#define ALEX_FEDERATION_FAULT_INJECTION_H_

#include <cstdint>

#include "federation/endpoint.h"

namespace alex::fed {

struct FaultProfile {
  // Seed of the whole fault universe. Same seed => same faults everywhere.
  uint64_t seed = 0;
  // Per probe attempt: probability of a transient kUnavailable failure.
  double transient_error_rate = 0.0;
  // Per endpoint: probability the endpoint is permanently down (decided
  // once from (seed, endpoint index); every probe then fails).
  double permanent_outage_rate = 0.0;
  // Per successful probe: probability the result is truncated to the first
  // max(1, floor(n * truncation_keep_fraction)) of its n triples.
  double truncation_rate = 0.0;
  double truncation_keep_fraction = 0.5;
  // Latency model, in virtual microseconds: every probe costs base plus a
  // uniform draw in [0, jitter]; a spike_rate fraction instead costs
  // spike_latency_micros.
  int64_t base_latency_micros = 0;
  int64_t latency_jitter_micros = 0;
  double spike_rate = 0.0;
  int64_t spike_latency_micros = 0;
  // Per-probe timeout (0 = none): a probe whose drawn latency exceeds this
  // fails with kDeadlineExceeded after costing the full timeout.
  int64_t probe_timeout_micros = 0;

  // True when this profile can never perturb a probe (no faults, no cost).
  bool IsZero() const {
    return transient_error_rate <= 0.0 && permanent_outage_rate <= 0.0 &&
           truncation_rate <= 0.0 && base_latency_micros <= 0 &&
           latency_jitter_micros <= 0 && spike_rate <= 0.0 &&
           probe_timeout_micros <= 0;
  }
};

class FaultInjectingEndpoint final : public Endpoint {
 public:
  // `inner` must outlive the decorator. `endpoint_index` is the endpoint's
  // position in the federation; it salts every decision so sources fail
  // independently under one profile.
  FaultInjectingEndpoint(Endpoint* inner, size_t endpoint_index,
                         const FaultProfile& profile);

  const rdf::TripleStore& store() const override { return inner_->store(); }

  Status Probe(rdf::TermPattern s, rdf::TermPattern p, rdf::TermPattern o,
               uint64_t query_salt, int attempt, ProbeResult* out) override;

  // A zero profile injects nothing; the engine may then skip resilience
  // bookkeeping entirely.
  bool reliable() const override { return profile_.IsZero(); }

  const std::string& name() const override { return inner_->name(); }

  // Whether (seed, endpoint_index) condemned this endpoint to a permanent
  // outage. Exposed for tests and benches.
  bool permanently_down() const { return permanently_down_; }

 private:
  Endpoint* inner_;
  size_t endpoint_index_;
  FaultProfile profile_;
  bool permanently_down_ = false;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_FAULT_INJECTION_H_
