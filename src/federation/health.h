// Endpoint health tracking: a closed / open / half-open circuit breaker
// per federation source.
//
// The breaker operates at *query* granularity in virtual time, which keeps
// it deterministic at any thread count: queries are issued sequentially, so
// before each query the engine snapshots every endpoint's effective state
// (an open breaker whose cooldown elapsed becomes half-open here), during
// the query probes against open endpoints short-circuit, and after the
// query each probed endpoint reports one aggregate verdict — failed if any
// of its probes ultimately failed, healthy otherwise. Within a query every
// probe sees the same snapshot, so per-source evaluation branches cannot
// race breaker transitions.
//
//   closed    -> open       after `failure_threshold` consecutive failed
//                           queries
//   open      -> half-open  once `cooldown_micros` of virtual time elapsed
//   half-open -> closed     after `half_open_successes` healthy queries
//   half-open -> open       on the next failed query (cooldown restarts)
#ifndef ALEX_FEDERATION_HEALTH_H_
#define ALEX_FEDERATION_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace alex::fed {

struct BreakerOptions {
  // Consecutive failed queries before the breaker opens.
  int failure_threshold = 3;
  // Virtual time an open breaker waits before admitting a half-open probe.
  int64_t cooldown_micros = 250000;
  // Healthy queries in half-open state before the breaker closes.
  int half_open_successes = 1;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

class EndpointHealth {
 public:
  explicit EndpointHealth(const BreakerOptions& options)
      : options_(options) {}

  struct Counters {
    size_t queries_ok = 0;      // healthy query verdicts
    size_t queries_failed = 0;  // failed query verdicts
    size_t opens = 0;           // closed/half-open -> open transitions
    size_t closes = 0;          // half-open -> closed transitions
    size_t half_opens = 0;      // open -> half-open transitions
  };

  // Effective state at virtual time `now`; transitions open -> half-open
  // when the cooldown elapsed. Called once per query, before any probe.
  BreakerState StateAt(int64_t now_micros);

  // False when probes to this endpoint must short-circuit (breaker open).
  bool AllowProbe(int64_t now_micros) {
    return StateAt(now_micros) != BreakerState::kOpen;
  }

  // One aggregate verdict for a query that actually probed this endpoint.
  void ReportQuery(bool healthy, int64_t now_micros);

  BreakerState state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  const Counters& counters() const { return counters_; }

 private:
  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int64_t opened_at_micros_ = 0;
  Counters counters_;
};

// One EndpointHealth per federation source.
class HealthTracker {
 public:
  HealthTracker(size_t num_endpoints, const BreakerOptions& options) {
    endpoints_.reserve(num_endpoints);
    for (size_t i = 0; i < num_endpoints; ++i) {
      endpoints_.emplace_back(options);
    }
  }

  EndpointHealth& endpoint(size_t i) { return endpoints_[i]; }
  const EndpointHealth& endpoint(size_t i) const { return endpoints_[i]; }
  size_t size() const { return endpoints_.size(); }

  // Counters summed across endpoints.
  EndpointHealth::Counters Totals() const;

 private:
  std::vector<EndpointHealth> endpoints_;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_HEALTH_H_
