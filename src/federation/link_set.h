// A mutable set of owl:sameAs links between two data sets.
//
// The federated engine consults a LinkSet to bridge entities across sources;
// ALEX mutates it as feedback arrives (add explored links, remove rejected
// ones). Lookup by either side is O(1) amortized.
#ifndef ALEX_FEDERATION_LINK_SET_H_
#define ALEX_FEDERATION_LINK_SET_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "linking/link.h"

namespace alex::fed {

// Read interface over a link collection: everything federated evaluation
// needs to bridge entities. LinkSet is the canonical mutable implementation;
// the serving tier layers copy-on-write epoch deltas over an immutable base
// (serving::DeltaLinkView) behind the same interface. Implementations must
// return RightsOf/LeftsOf in ascending lexicographic order so query results
// are independent of the physical representation (overlay vs. materialized).
class LinkView {
 public:
  virtual ~LinkView() = default;

  virtual bool Contains(const std::string& left,
                        const std::string& right) const = 0;
  // Counterparts of a left-side / right-side entity, sorted ascending.
  virtual std::vector<std::string> RightsOf(const std::string& left) const = 0;
  virtual std::vector<std::string> LeftsOf(const std::string& right) const = 0;
};

class LinkSet : public LinkView {
 public:
  LinkSet() = default;

  // Adds `link`; returns true if it was new. Keeps the higher score when the
  // same IRI pair is re-added.
  bool Add(const linking::Link& link);

  // Removes the link with this IRI pair; returns true if it existed.
  bool Remove(const std::string& left, const std::string& right);

  bool Contains(const std::string& left,
                const std::string& right) const override;

  // Counterparts of a left-side / right-side entity.
  std::vector<std::string> RightsOf(
      const std::string& left) const override;
  std::vector<std::string> LeftsOf(
      const std::string& right) const override;

  size_t size() const { return links_.size(); }
  bool empty() const { return links_.empty(); }

  // Snapshot of all links (unspecified order).
  std::vector<linking::Link> All() const;

 private:
  std::unordered_map<std::string, std::unordered_map<std::string, double>>
      by_left_;  // left -> right -> score
  std::unordered_map<std::string, std::unordered_set<std::string>>
      by_right_;  // right -> lefts
  std::unordered_set<linking::Link, linking::LinkHash> links_;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_LINK_SET_H_
