// A mutable set of owl:sameAs links between two data sets.
//
// The federated engine consults a LinkSet to bridge entities across sources;
// ALEX mutates it as feedback arrives (add explored links, remove rejected
// ones). Lookup by either side is O(1) amortized.
#ifndef ALEX_FEDERATION_LINK_SET_H_
#define ALEX_FEDERATION_LINK_SET_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "linking/link.h"

namespace alex::fed {

class LinkSet {
 public:
  LinkSet() = default;

  // Adds `link`; returns true if it was new. Keeps the higher score when the
  // same IRI pair is re-added.
  bool Add(const linking::Link& link);

  // Removes the link with this IRI pair; returns true if it existed.
  bool Remove(const std::string& left, const std::string& right);

  bool Contains(const std::string& left, const std::string& right) const;

  // Counterparts of a left-side / right-side entity.
  std::vector<std::string> RightsOf(const std::string& left) const;
  std::vector<std::string> LeftsOf(const std::string& right) const;

  size_t size() const { return links_.size(); }
  bool empty() const { return links_.empty(); }

  // Snapshot of all links (unspecified order).
  std::vector<linking::Link> All() const;

 private:
  std::unordered_map<std::string, std::unordered_map<std::string, double>>
      by_left_;  // left -> right -> score
  std::unordered_map<std::string, std::unordered_set<std::string>>
      by_right_;  // right -> lefts
  std::unordered_set<linking::Link, linking::LinkHash> links_;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_LINK_SET_H_
