// Per-probe retry with exponential backoff + deterministic jitter.
//
// All delays are *virtual* microseconds charged to the query's simulated
// time budget — nothing here sleeps. Jitter is derived from a caller-
// supplied key (a hash of the probe identity), not from a shared RNG, so
// the backoff schedule is a pure function of the probe and is identical at
// any thread count.
#ifndef ALEX_FEDERATION_RETRY_POLICY_H_
#define ALEX_FEDERATION_RETRY_POLICY_H_

#include <cstdint>

#include "common/status.h"

namespace alex::fed {

struct RetryPolicy {
  // Total tries per probe (1 = no retries).
  int max_attempts = 3;
  // Backoff before retry k (1-based) is
  //   min(initial * multiplier^(k-1), max) * (1 +/- jitter)
  int64_t initial_backoff_micros = 1000;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_micros = 64000;
  // Fraction of the backoff smeared by jitter: the actual delay is
  // uniform in [base * (1 - jitter_fraction), base * (1 + jitter_fraction)].
  double jitter_fraction = 0.5;
};

// Whether a failed probe may be retried. Endpoint unavailability and probe
// timeouts are transient; everything else is a hard error.
bool IsRetryable(StatusCode code);

// The (virtual) backoff delay before retry `attempt` (1-based), jittered
// deterministically by `jitter_key`.
int64_t BackoffMicros(const RetryPolicy& policy, int attempt,
                      uint64_t jitter_key);

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_RETRY_POLICY_H_
