// Federated query processing over multiple RDF sources with owl:sameAs
// bridging (the role FedX plays in the paper, §3.2).
//
// A federated query is written as if all data were in one place. The engine
// decomposes it per triple pattern, selects capable sources, and evaluates a
// backtracking join across sources. When a variable bound to an entity of
// one source must match an entity of another source, the engine consults the
// LinkSet: IRIs x and y unify iff x == y or (x, y) / (y, x) is a link.
//
// Every answer carries *provenance*: the set of links that were used to
// produce it. This is what user feedback attaches to — approving an answer
// approves its links, rejecting it rejects them (paper §3.2, §4).
//
// Sources are fed::Endpoints. Real endpoints fail, so Execute returns a
// FederatedResult: the answers plus completeness metadata. When an endpoint
// probe ultimately fails (after per-source retry with exponential backoff),
// is short-circuited by an open circuit breaker, or returns a truncated
// result, evaluation continues without it and the result is marked
// incomplete with the failed sources listed — degraded sources yield
// annotated partial answers instead of aborting the query. Incomplete
// results are never stored into the attached FederatedQueryCache, and the
// query-driven episode loop (eval/query_workload) never derives feedback
// from them.
//
// All failure handling runs in virtual time (common/clock.h): retry backoff
// and breaker cooldowns cost simulated microseconds, never wall sleeps, and
// with deterministic endpoints (fault_injection.h) the entire failure
// timeline is bitwise-identical at any thread count.
#ifndef ALEX_FEDERATION_FEDERATED_ENGINE_H_
#define ALEX_FEDERATION_FEDERATED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "federation/endpoint.h"
#include "federation/health.h"
#include "federation/link_set.h"
#include "federation/retry_policy.h"
#include "rdf/triple_store.h"
#include "sparql/algebra.h"

namespace alex {
class ThreadPool;
}  // namespace alex

namespace alex::sparql {
class PlanCache;
}  // namespace alex::sparql

namespace alex::fed {

class FederatedQueryCache;

struct FederatedAnswer {
  sparql::Binding binding;
  // Links used to bridge sources while producing this answer. Empty when the
  // answer came from a single source.
  std::vector<linking::Link> links_used;
};

struct FederatedOptions {
  size_t max_rows = 100000;
  // When set, each UNION alternative fans out one evaluation branch per
  // source (the branch opens the join on that source) and the branch
  // outputs are merged in ascending source order — bitwise-identical to the
  // sequential result. nullptr = single-threaded.
  ThreadPool* pool = nullptr;
  // Per-query budget of simulated endpoint time, in virtual microseconds
  // (0 = unlimited). A query whose probe latencies and retry backoffs
  // together exceed it is marked incomplete with deadline_exceeded set.
  // Purely an accounting budget over deterministic virtual time — it never
  // aborts evaluation, so results stay thread-count-invariant.
  int64_t deadline_micros = 0;
  // Salts deterministic fault decisions when running a pre-parsed query
  // through Execute(). ExecuteText derives the salt from the query
  // fingerprint instead, so each distinct query text sees independent
  // faults while re-executions of the same text replay the same ones
  // (which keeps cached and uncached runs identical).
  uint64_t fault_salt = 0;
};

// Answers plus completeness metadata. `complete` means the answer set is
// exactly what a fully reliable federation would have produced; any
// degradation — a failed or breaker-blocked source, a truncated endpoint
// result, the max_rows cap, a blown deadline budget — clears it.
struct FederatedResult {
  std::vector<FederatedAnswer> answers;
  bool complete = true;
  bool from_cache = false;
  // The engine's max_rows cap cut the enumeration short (never set for ASK,
  // whose first answer is semantic completion).
  bool row_capped = false;
  // Some endpoint returned a truncated probe result.
  bool truncated = false;
  // The per-query virtual-time budget (FederatedOptions::deadline_micros)
  // was exceeded.
  bool deadline_exceeded = false;
  // Endpoints that could not fully contribute: ultimately-failed probes,
  // open-breaker short circuits, or truncated results. Ascending, unique.
  std::vector<size_t> failed_sources;
  // Probe attempts issued (retries included), retries among them, and
  // probes skipped by an open breaker.
  size_t probes = 0;
  size_t retries = 0;
  size_t short_circuits = 0;
  // Simulated endpoint time this execution cost (latencies + backoffs).
  int64_t virtual_micros = 0;
};

// Thread-safety: on the reliable path (all endpoints reliable) Execute and
// ExecuteText are const and touch no engine state beyond the attached
// caches, which are themselves thread-safe — concurrent executions from many
// query streams are supported, which is what the serving tier relies on.
// The resilient path mutates breaker state and the virtual clock; resilient
// queries must be issued sequentially (that is what makes breaker
// transitions deterministic).
class FederatedEngine {
 public:
  // Retry and breaker configuration for unreliable endpoints.
  struct Resilience {
    RetryPolicy retry;
    BreakerOptions breaker;
  };

  // Per-engine failure accounting since the last TakeFaultStats().
  struct FaultStats {
    size_t queries = 0;             // executions on the resilient path
    size_t degraded = 0;            // of which returned incomplete
    size_t breaker_opens = 0;       // closed/half-open -> open
    size_t breaker_half_opens = 0;  // open -> half-open
    size_t breaker_closes = 0;      // half-open -> closed
  };

  // Wraps each store in a LocalEndpoint: the seed engine, bit-for-bit.
  // `sources` and `links` must outlive the engine. The link collection is
  // any LinkView: a mutable LinkSet (mutated between Execute() calls — that
  // is the whole point of ALEX) or an immutable epoch snapshot view from
  // the serving tier (serving::EpochSnapshot holds one engine per published
  // epoch; these are the snapshot-handle constructors).
  FederatedEngine(std::vector<const rdf::TripleStore*> sources,
                  const LinkView* links);

  // Federates over caller-owned endpoints (which must outlive the engine;
  // the pointer list itself is copied). When any endpoint is unreliable the
  // engine runs its resilient path: per-source retry with backoff, circuit
  // breaking, and completeness tracking, all in virtual time.
  FederatedEngine(std::span<Endpoint* const> endpoints,
                  const LinkView* links);

  // Parses and runs a federated SELECT query.
  Result<FederatedResult> ExecuteText(
      const std::string& query_text,
      const FederatedOptions& options = {}) const;

  // Runs an already-parsed query.
  Result<FederatedResult> Execute(const sparql::Query& query,
                                  const FederatedOptions& options = {}) const;

  const std::vector<const rdf::TripleStore*>& sources() const {
    return sources_;
  }
  const std::vector<Endpoint*>& endpoints() const { return endpoints_; }

  // Attaches a result cache consulted by ExecuteText(). The cache must be
  // invalidated for every link-set change (FederatedQueryCache does this
  // exactly, from epoch deltas); sources must stay immutable while the
  // cache is attached. Only complete results are admitted: a degraded or
  // row-capped answer set is returned to the caller but never cached, so a
  // transient endpoint failure can never poison later executions. nullptr
  // detaches.
  void set_cache(FederatedQueryCache* cache) { cache_ = cache; }

  // Attaches a parse cache consulted by ExecuteText(): repeated query
  // texts (the episode loop re-issues the same workload every epoch) are
  // parsed once instead of per call. Parsing is deterministic, so cached
  // and uncached runs stay bitwise identical. nullptr detaches.
  void set_plan_cache(sparql::PlanCache* plan_cache) {
    plan_cache_ = plan_cache;
  }

  // Replaces the retry/breaker configuration. Call before the first
  // Execute(): breaker state is reset.
  void set_resilience(const Resilience& resilience);
  const Resilience& resilience() const { return resilience_; }

  // Per-endpoint breaker state and counters (resilient path only).
  const HealthTracker& health() const { return *health_; }
  // Whether this engine runs the resilient path (any unreliable endpoint).
  bool resilient() const { return resilient_; }
  // The engine's virtual clock: total simulated endpoint time consumed.
  int64_t virtual_now_micros() const { return clock_.NowMicros(); }

  // Returns and resets the failure counters (per-episode accounting, like
  // FederatedQueryCache::TakeStats).
  FaultStats TakeFaultStats();

 private:
  // Shared implementation. When `consulted` is non-null it collects every
  // IRI whose link neighborhood was consulted — the exact dependency
  // footprint of the answer set on the link set. `fault_salt` feeds the
  // endpoints' deterministic fault decisions.
  Result<FederatedResult> ExecuteInternal(
      const sparql::Query& query, const FederatedOptions& options,
      uint64_t fault_salt,
      std::unordered_set<std::string>* consulted) const;

  std::vector<std::unique_ptr<Endpoint>> owned_endpoints_;
  std::vector<Endpoint*> endpoints_;
  std::vector<const rdf::TripleStore*> sources_;  // endpoints_[i]->store()
  const LinkView* links_;
  FederatedQueryCache* cache_ = nullptr;
  sparql::PlanCache* plan_cache_ = nullptr;
  bool resilient_ = false;
  Resilience resilience_;
  // Failure-domain state. Mutated by Execute (which stays const for the
  // common reliable path); concurrent Execute calls on a *resilient* engine
  // are not supported — queries are issued sequentially, which is what
  // makes breaker transitions deterministic.
  mutable std::unique_ptr<HealthTracker> health_;
  mutable VirtualClock clock_;
  mutable FaultStats fault_stats_;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_FEDERATED_ENGINE_H_
