// Federated query processing over multiple RDF sources with owl:sameAs
// bridging (the role FedX plays in the paper, §3.2).
//
// A federated query is written as if all data were in one place. The engine
// decomposes it per triple pattern, selects capable sources, and evaluates a
// backtracking join across sources. When a variable bound to an entity of
// one source must match an entity of another source, the engine consults the
// LinkSet: IRIs x and y unify iff x == y or (x, y) / (y, x) is a link.
//
// Every answer carries *provenance*: the set of links that were used to
// produce it. This is what user feedback attaches to — approving an answer
// approves its links, rejecting it rejects them (paper §3.2, §4).
#ifndef ALEX_FEDERATION_FEDERATED_ENGINE_H_
#define ALEX_FEDERATION_FEDERATED_ENGINE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "federation/link_set.h"
#include "rdf/triple_store.h"
#include "sparql/algebra.h"

namespace alex {
class ThreadPool;
}  // namespace alex

namespace alex::fed {

class FederatedQueryCache;

struct FederatedAnswer {
  sparql::Binding binding;
  // Links used to bridge sources while producing this answer. Empty when the
  // answer came from a single source.
  std::vector<linking::Link> links_used;
};

struct FederatedOptions {
  size_t max_rows = 100000;
  // When set, each UNION alternative fans out one evaluation branch per
  // source (the branch opens the join on that source) and the branch
  // outputs are merged in ascending source order — bitwise-identical to the
  // sequential result. nullptr = single-threaded.
  ThreadPool* pool = nullptr;
};

class FederatedEngine {
 public:
  // `sources` and `links` must outlive the engine. The link set may be
  // mutated between Execute() calls (that is the whole point of ALEX).
  FederatedEngine(std::vector<const rdf::TripleStore*> sources,
                  const LinkSet* links)
      : sources_(std::move(sources)), links_(links) {}

  // Parses and runs a federated SELECT query.
  Result<std::vector<FederatedAnswer>> ExecuteText(
      const std::string& query_text,
      const FederatedOptions& options = {}) const;

  // Runs an already-parsed query.
  Result<std::vector<FederatedAnswer>> Execute(
      const sparql::Query& query, const FederatedOptions& options = {}) const;

  const std::vector<const rdf::TripleStore*>& sources() const {
    return sources_;
  }

  // Attaches a result cache consulted by ExecuteText(). The cache must be
  // invalidated for every link-set change (FederatedQueryCache does this
  // exactly, from epoch deltas); sources must stay immutable while the
  // cache is attached. nullptr detaches.
  void set_cache(FederatedQueryCache* cache) { cache_ = cache; }

 private:
  // Shared implementation. When `consulted` is non-null it collects every
  // IRI whose link neighborhood was consulted — the exact dependency
  // footprint of the answer set on the link set.
  Result<std::vector<FederatedAnswer>> ExecuteInternal(
      const sparql::Query& query, const FederatedOptions& options,
      std::unordered_set<std::string>* consulted) const;

  std::vector<const rdf::TripleStore*> sources_;
  const LinkSet* links_;
  FederatedQueryCache* cache_ = nullptr;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_FEDERATED_ENGINE_H_
