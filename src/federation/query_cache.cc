#include "federation/query_cache.h"

namespace alex::fed {

uint64_t QueryFingerprint(const std::string& query_text, size_t max_rows) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a
  auto mix = [&hash](uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xffu;
      hash *= 1099511628211ull;
    }
  };
  for (unsigned char c : query_text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  mix(query_text.size());
  mix(static_cast<uint64_t>(max_rows));
  return hash;
}

const std::vector<FederatedAnswer>* FederatedQueryCache::Lookup(
    uint64_t fingerprint) {
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second.answers;
}

void FederatedQueryCache::Insert(
    uint64_t fingerprint, std::vector<FederatedAnswer> answers,
    const std::unordered_set<std::string>& consulted_iris) {
  Erase(fingerprint);  // replace any stale entry for this fingerprint
  Entry& entry = entries_[fingerprint];
  entry.answers = std::move(answers);
  entry.consulted.assign(consulted_iris.begin(), consulted_iris.end());
  for (const std::string& iri : entry.consulted) {
    by_iri_[iri].insert(fingerprint);
  }
}

void FederatedQueryCache::InvalidateLink(const linking::Link& link) {
  for (const std::string* iri : {&link.left, &link.right}) {
    auto it = by_iri_.find(*iri);
    if (it == by_iri_.end()) continue;
    // Erase mutates by_iri_; copy the fingerprint set first.
    std::vector<uint64_t> fingerprints(it->second.begin(), it->second.end());
    for (uint64_t fingerprint : fingerprints) {
      Erase(fingerprint);
      ++stats_.invalidated;
    }
  }
}

void FederatedQueryCache::Clear() {
  entries_.clear();
  by_iri_.clear();
}

FederatedQueryCache::Stats FederatedQueryCache::TakeStats() {
  Stats out = stats_;
  stats_ = Stats();
  return out;
}

void FederatedQueryCache::Erase(uint64_t fingerprint) {
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return;
  for (const std::string& iri : it->second.consulted) {
    auto by = by_iri_.find(iri);
    if (by == by_iri_.end()) continue;
    by->second.erase(fingerprint);
    if (by->second.empty()) by_iri_.erase(by);
  }
  entries_.erase(it);
}

}  // namespace alex::fed
