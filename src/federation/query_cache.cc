#include "federation/query_cache.h"

#include <mutex>

namespace alex::fed {

uint64_t QueryFingerprint(const std::string& query_text, size_t max_rows) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a
  auto mix = [&hash](uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xffu;
      hash *= 1099511628211ull;
    }
  };
  for (unsigned char c : query_text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  mix(query_text.size());
  mix(static_cast<uint64_t>(max_rows));
  return hash;
}

FederatedQueryCache::FederatedQueryCache(
    const FederatedQueryCache& parent,
    std::span<const linking::Link> invalidated) {
  {
    std::shared_lock parent_lock(parent.mu_);
    entries_ = parent.entries_;
    by_iri_ = parent.by_iri_;
  }
  // No lock needed below: nobody else can see *this during construction.
  for (const linking::Link& link : invalidated) {
    for (const std::string* iri : {&link.left, &link.right}) {
      auto it = by_iri_.find(*iri);
      if (it == by_iri_.end()) continue;
      std::vector<uint64_t> fingerprints(it->second.begin(), it->second.end());
      for (uint64_t fingerprint : fingerprints) {
        EraseLocked(fingerprint);
        invalidated_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

std::shared_ptr<const std::vector<FederatedAnswer>> FederatedQueryCache::Lookup(
    uint64_t fingerprint) {
  std::shared_lock lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.answers;
}

void FederatedQueryCache::Insert(
    uint64_t fingerprint, std::vector<FederatedAnswer> answers,
    const std::unordered_set<std::string>& consulted_iris) {
  std::unique_lock lock(mu_);
  EraseLocked(fingerprint);  // replace any stale entry for this fingerprint
  Entry& entry = entries_[fingerprint];
  entry.answers = std::make_shared<const std::vector<FederatedAnswer>>(
      std::move(answers));
  entry.consulted.assign(consulted_iris.begin(), consulted_iris.end());
  for (const std::string& iri : entry.consulted) {
    by_iri_[iri].insert(fingerprint);
  }
}

void FederatedQueryCache::InvalidateLink(const linking::Link& link) {
  std::unique_lock lock(mu_);
  for (const std::string* iri : {&link.left, &link.right}) {
    auto it = by_iri_.find(*iri);
    if (it == by_iri_.end()) continue;
    // EraseLocked mutates by_iri_; copy the fingerprint set first.
    std::vector<uint64_t> fingerprints(it->second.begin(), it->second.end());
    for (uint64_t fingerprint : fingerprints) {
      EraseLocked(fingerprint);
      invalidated_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void FederatedQueryCache::Clear() {
  std::unique_lock lock(mu_);
  entries_.clear();
  by_iri_.clear();
}

size_t FederatedQueryCache::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

FederatedQueryCache::Stats FederatedQueryCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.invalidated = invalidated_.load(std::memory_order_relaxed);
  return out;
}

FederatedQueryCache::Stats FederatedQueryCache::TakeStats() {
  Stats out;
  out.hits = hits_.exchange(0, std::memory_order_relaxed);
  out.misses = misses_.exchange(0, std::memory_order_relaxed);
  out.invalidated = invalidated_.exchange(0, std::memory_order_relaxed);
  return out;
}

void FederatedQueryCache::EraseLocked(uint64_t fingerprint) {
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return;
  for (const std::string& iri : it->second.consulted) {
    auto by = by_iri_.find(iri);
    if (by == by_iri_.end()) continue;
    by->second.erase(fingerprint);
    if (by->second.empty()) by_iri_.erase(by);
  }
  entries_.erase(it);
}

}  // namespace alex::fed
