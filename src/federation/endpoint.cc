#include "federation/endpoint.h"

namespace alex::fed {

Status LocalEndpoint::Probe(rdf::TermPattern s, rdf::TermPattern p,
                            rdf::TermPattern o, uint64_t query_salt,
                            int attempt, ProbeResult* out) {
  (void)query_salt;
  (void)attempt;
  out->triples = store_->Match(s, p, o);
  out->truncated = false;
  out->latency_micros = 0;
  return Status::Ok();
}

}  // namespace alex::fed
