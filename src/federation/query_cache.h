// Federated query result cache with exact link-epoch invalidation.
//
// ALEX re-runs the same federated workload every episode, but between
// episodes only a small fraction of the candidate link set changes (a
// CandidateSet tracks exactly which links, via its epoch deltas). A
// federated answer can only depend on the link set through the IRIs whose
// sameAs neighborhoods the evaluator consulted while producing it — every
// bound IRI it tried to bridge, whether or not a counterpart existed. So a
// cached result is replay-exact as long as none of its consulted IRIs
// gained or lost a link:
//
//   The evaluation is deterministic given (sources, link neighborhoods of
//   consulted IRIs). By induction over evaluator steps, if every consulted
//   IRI has an unchanged neighborhood, the re-run consults the same IRIs,
//   makes the same choices, and emits the same answers in the same order.
//   A link change on a never-consulted IRI cannot alter any step.
//
// The cache therefore keys entries by a fingerprint of (query text,
// max_rows) and indexes them by consulted IRI; InvalidateLink drops exactly
// the entries whose consulted set touches either endpoint. Invalidation can
// only be spuriously broad (dropping a still-valid entry costs a re-run),
// never stale. Sources must be immutable while the cache is live.
//
// Thread-safety: the cache is shared by every query stream of a serving
// epoch, so the hot path takes a SHARED lock (concurrent lookups never
// serialize on each other) with hit/miss counters as relaxed atomics;
// Insert/InvalidateLink take the exclusive lock. Answer payloads are
// shared_ptr-held so a Lookup result stays valid even if the entry is
// invalidated while the caller is still reading it.
//
// The snapshot-handle constructor clones a parent epoch's cache minus the
// entries a staged link delta invalidates: publishing an epoch carries all
// still-exact results forward instead of starting every epoch cold.
#ifndef ALEX_FEDERATION_QUERY_CACHE_H_
#define ALEX_FEDERATION_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "federation/federated_engine.h"
#include "linking/link.h"

namespace alex::fed {

// Fingerprint of a federated query execution request. Collisions are
// 64-bit-unlikely; a collision would serve the other query's rows, so the
// fingerprint hashes the full text, not a truncation.
uint64_t QueryFingerprint(const std::string& query_text, size_t max_rows);

class FederatedQueryCache {
 public:
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t invalidated = 0;  // entries dropped by link changes
  };

  FederatedQueryCache() = default;

  // Snapshot-handle constructor: clones `parent` (under its shared lock)
  // and then drops every entry whose consulted set touches a link in
  // `invalidated` — exactly the epoch-delta invalidation the query-driven
  // loop performs link by link, applied wholesale at publish time. Counters
  // start at zero except `invalidated`, which counts the entries dropped.
  FederatedQueryCache(const FederatedQueryCache& parent,
                      std::span<const linking::Link> invalidated);

  FederatedQueryCache(const FederatedQueryCache&) = delete;
  FederatedQueryCache& operator=(const FederatedQueryCache&) = delete;

  // Cached answers for `fingerprint`, or nullptr. Counts a hit or a miss.
  // The returned pointer keeps the answer vector alive independently of the
  // entry's lifetime in the cache.
  std::shared_ptr<const std::vector<FederatedAnswer>> Lookup(
      uint64_t fingerprint);

  // Stores the result of a (cache-miss) execution together with the IRIs
  // whose link neighborhoods the evaluator consulted. Replaces any previous
  // entry for the fingerprint.
  void Insert(uint64_t fingerprint, std::vector<FederatedAnswer> answers,
              const std::unordered_set<std::string>& consulted_iris);

  // Exact epoch-delta invalidation: called once per candidate link that was
  // added to or removed from the link set. Drops every entry that consulted
  // either endpoint; all other entries remain replay-exact.
  void InvalidateLink(const linking::Link& link);

  // Drops every entry (e.g. when the sources themselves change).
  void Clear();

  size_t size() const;
  // Snapshot of the hit/miss/invalidation counters.
  Stats stats() const;
  // Returns the counters accumulated since the last TakeStats() and resets
  // them (entries are kept); used for per-episode accounting.
  Stats TakeStats();

 private:
  struct Entry {
    std::shared_ptr<const std::vector<FederatedAnswer>> answers;
    std::vector<std::string> consulted;  // for inverted-index cleanup
  };

  // mu_ must be held exclusively.
  void EraseLocked(uint64_t fingerprint);

  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  // IRI -> fingerprints of entries that consulted it.
  std::unordered_map<std::string, std::unordered_set<uint64_t>> by_iri_;
  // Counters live outside the map state so the shared-lock hot path can
  // bump them without upgrading to the exclusive lock.
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<size_t> invalidated_{0};
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_QUERY_CACHE_H_
