#include "datagen/profiles.h"

namespace alex::datagen {
namespace {

constexpr const char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

// A person/organization-flavored schema (DBpedia-vs-NYTimes style):
// heterogeneous predicate names, one low-selectivity category attribute.
std::vector<AttributeSpec> MediaSchema(double noise) {
  std::vector<AttributeSpec> attrs;
  {
    AttributeSpec a;
    a.left_predicate = "http://www.w3.org/2000/01/rdf-schema#label";
    a.right_predicate = "http://data.nytimes.com/elements/name";
    a.kind = AttributeSpec::Kind::kName;
    a.right_noise = noise;
    a.noise_strength = 0.3;
    attrs.push_back(a);
  }
  {
    AttributeSpec a;
    a.left_predicate = "http://dbpedia.org/ontology/abstract";
    a.right_predicate = "http://data.nytimes.com/elements/topic";
    a.kind = AttributeSpec::Kind::kPhrase;
    a.vocab_size = 1200;
    a.left_presence = 0.9;
    a.right_presence = 0.8;
    a.right_noise = noise;
    a.noise_strength = 0.25;
    attrs.push_back(a);
  }
  {
    AttributeSpec a;
    a.left_predicate = "http://dbpedia.org/ontology/birthDate";
    a.right_predicate = "http://data.nytimes.com/elements/firstUse";
    a.kind = AttributeSpec::Kind::kDate;
    a.left_presence = 0.85;
    a.right_presence = 0.75;
    a.right_noise = noise * 0.8;
    a.noise_strength = 0.3;
    attrs.push_back(a);
  }
  {
    AttributeSpec a;
    a.left_predicate = "http://dbpedia.org/ontology/wikiPageID";
    a.right_predicate = "http://data.nytimes.com/elements/articleCount";
    a.kind = AttributeSpec::Kind::kInteger;
    a.min_value = 1;
    a.max_value = 40000;
    a.left_presence = 0.8;
    a.right_presence = 0.7;
    a.right_noise = noise;
    a.noise_strength = 0.2;
    attrs.push_back(a);
  }
  {
    // The non-distinctive feature of §4.2's (rdf:type, rdf:type) example.
    AttributeSpec a;
    a.left_predicate = kRdfType;
    a.right_predicate = kRdfType;
    a.kind = AttributeSpec::Kind::kCategory;
    a.vocab_size = 24;
    a.right_noise = 0.9;
    a.noise_strength = 0.25;
    attrs.push_back(a);
  }
  return attrs;
}

// A life-sciences-flavored schema (Drugbank style): clean, highly
// identifying values — the danger is confusable entities, not noise.
std::vector<AttributeSpec> DrugSchema(double noise) {
  std::vector<AttributeSpec> attrs;
  {
    AttributeSpec a;
    a.left_predicate = "http://www.w3.org/2000/01/rdf-schema#label";
    a.right_predicate = "http://drugbank.example.org/elements/genericName";
    a.kind = AttributeSpec::Kind::kName;
    a.right_noise = noise;
    a.noise_strength = 0.25;
    attrs.push_back(a);
  }
  {
    AttributeSpec a;
    a.left_predicate = "http://dbpedia.org/ontology/chemicalFormula";
    a.right_predicate = "http://drugbank.example.org/elements/formula";
    a.kind = AttributeSpec::Kind::kPhrase;
    a.vocab_size = 1500;
    a.left_presence = 0.95;
    a.right_presence = 0.9;
    a.right_noise = noise;
    a.noise_strength = 0.2;
    attrs.push_back(a);
  }
  {
    AttributeSpec a;
    a.left_predicate = "http://dbpedia.org/ontology/casNumber";
    a.right_predicate = "http://drugbank.example.org/elements/casRegistry";
    a.kind = AttributeSpec::Kind::kInteger;
    a.min_value = 1000;
    a.max_value = 999999;
    a.left_presence = 0.9;
    a.right_presence = 0.85;
    a.right_noise = noise;
    attrs.push_back(a);
  }
  {
    AttributeSpec a;
    a.left_predicate = kRdfType;
    a.right_predicate = kRdfType;
    a.kind = AttributeSpec::Kind::kCategory;
    a.vocab_size = 18;
    a.right_noise = 0.9;
    a.noise_strength = 0.25;
    attrs.push_back(a);
  }
  return attrs;
}

// A linguistics-flavored schema (Lexvo style).
std::vector<AttributeSpec> LanguageSchema(double noise) {
  std::vector<AttributeSpec> attrs;
  {
    AttributeSpec a;
    a.left_predicate = "http://www.w3.org/2000/01/rdf-schema#label";
    a.right_predicate = "http://lexvo.example.org/elements/name";
    a.kind = AttributeSpec::Kind::kName;
    a.right_noise = noise;
    a.noise_strength = 0.35;
    attrs.push_back(a);
  }
  {
    AttributeSpec a;
    a.left_predicate = "http://dbpedia.org/ontology/iso6393Code";
    a.right_predicate = "http://lexvo.example.org/elements/isoCode";
    a.kind = AttributeSpec::Kind::kPhrase;
    a.vocab_size = 320;
    a.left_presence = 0.85;
    a.right_presence = 0.85;
    a.right_noise = noise * 0.6;
    a.noise_strength = 0.2;
    attrs.push_back(a);
  }
  {
    AttributeSpec a;
    a.left_predicate = "http://dbpedia.org/ontology/speakers";
    a.right_predicate = "http://lexvo.example.org/elements/speakerCount";
    a.kind = AttributeSpec::Kind::kInteger;
    a.min_value = 1000;
    a.max_value = 2000000;
    a.left_presence = 0.7;
    a.right_presence = 0.65;
    a.right_noise = noise;
    attrs.push_back(a);
  }
  {
    AttributeSpec a;
    a.left_predicate = kRdfType;
    a.right_predicate = kRdfType;
    a.kind = AttributeSpec::Kind::kCategory;
    a.vocab_size = 14;
    a.right_noise = 0.9;
    a.noise_strength = 0.25;
    attrs.push_back(a);
  }
  return attrs;
}

}  // namespace

WorldProfile DbpediaNytimesProfile() {
  WorldProfile p;
  p.name = "dbpedia_nytimes";
  p.left_store_name = "dbpedia";
  p.right_store_name = "nytimes";
  p.left_namespace = "http://dbpedia.org/resource/";
  p.right_namespace = "http://data.nytimes.com/";
  p.overlap_entities = 600;
  p.left_only_entities = 500;
  p.right_only_entities = 250;
  p.confusable_pairs = 0;
  p.attributes = MediaSchema(/*noise=*/0.8);
  p.seed = 20150531;
  return p;
}

WorldProfile DbpediaDrugbankProfile() {
  WorldProfile p;
  p.name = "dbpedia_drugbank";
  p.left_store_name = "dbpedia";
  p.right_store_name = "drugbank";
  p.left_namespace = "http://dbpedia.org/resource/";
  p.right_namespace = "http://drugbank.example.org/drugs/";
  p.overlap_entities = 250;
  p.left_only_entities = 400;
  p.right_only_entities = 100;
  p.confusable_pairs = 600;  // low precision, high recall regime
  p.confusable_noise = 0.0;
  p.attributes = DrugSchema(/*noise=*/0.05);
  p.seed = 20150601;
  return p;
}

WorldProfile DbpediaLexvoProfile() {
  WorldProfile p;
  p.name = "dbpedia_lexvo";
  p.left_store_name = "dbpedia";
  p.right_store_name = "lexvo";
  p.left_namespace = "http://dbpedia.org/resource/";
  p.right_namespace = "http://lexvo.example.org/id/";
  p.overlap_entities = 350;
  p.left_only_entities = 400;
  p.right_only_entities = 150;
  p.confusable_pairs = 300;  // hurts precision...
  p.confusable_noise = 0.1;
  p.attributes = LanguageSchema(/*noise=*/0.55);  // ...and noise hurts recall
  p.seed = 20150602;
  return p;
}

WorldProfile OpencycNytimesProfile() {
  WorldProfile p = DbpediaNytimesProfile();
  p.name = "opencyc_nytimes";
  p.left_store_name = "opencyc";
  p.left_namespace = "http://sw.opencyc.org/concept/";
  p.overlap_entities = 300;
  p.left_only_entities = 300;
  p.right_only_entities = 150;
  p.seed = 20150603;
  return p;
}

WorldProfile OpencycDrugbankProfile() {
  WorldProfile p = DbpediaDrugbankProfile();
  p.name = "opencyc_drugbank";
  p.left_store_name = "opencyc";
  p.left_namespace = "http://sw.opencyc.org/concept/";
  p.overlap_entities = 120;
  p.left_only_entities = 220;
  p.right_only_entities = 80;
  p.confusable_pairs = 280;
  p.seed = 20150604;
  return p;
}

WorldProfile OpencycLexvoProfile() {
  WorldProfile p = DbpediaLexvoProfile();
  p.name = "opencyc_lexvo";
  p.left_store_name = "opencyc";
  p.left_namespace = "http://sw.opencyc.org/concept/";
  p.overlap_entities = 110;
  p.left_only_entities = 180;
  p.right_only_entities = 80;
  p.confusable_pairs = 100;
  p.seed = 20150605;
  return p;
}

WorldProfile DbpediaSwdfProfile() {
  WorldProfile p;
  p.name = "dbpedia_swdf";
  p.left_store_name = "dbpedia";
  p.right_store_name = "swdf";
  p.left_namespace = "http://dbpedia.org/resource/";
  p.right_namespace = "http://data.semanticweb.org/";
  p.overlap_entities = 120;
  p.left_only_entities = 260;
  p.right_only_entities = 120;
  p.attributes = MediaSchema(/*noise=*/0.6);
  p.seed = 20150606;
  return p;
}

WorldProfile OpencycSwdfProfile() {
  WorldProfile p = DbpediaSwdfProfile();
  p.name = "opencyc_swdf";
  p.left_store_name = "opencyc";
  p.left_namespace = "http://sw.opencyc.org/concept/";
  p.overlap_entities = 60;
  p.left_only_entities = 130;
  p.right_only_entities = 60;
  p.seed = 20150607;
  return p;
}

WorldProfile DbpediaNbaNytimesProfile() {
  WorldProfile p;
  p.name = "dbpedia_nba_nytimes";
  p.left_store_name = "dbpedia_nba";
  p.right_store_name = "nytimes";
  p.left_namespace = "http://dbpedia.org/resource/nba/";
  p.right_namespace = "http://data.nytimes.com/";
  p.overlap_entities = 90;
  p.left_only_entities = 130;
  p.right_only_entities = 60;
  p.attributes = MediaSchema(/*noise=*/0.7);
  p.seed = 20150608;
  return p;
}

WorldProfile OpencycNbaNytimesProfile() {
  WorldProfile p = DbpediaNbaNytimesProfile();
  p.name = "opencyc_nba_nytimes";
  p.left_store_name = "opencyc_nba";
  p.left_namespace = "http://sw.opencyc.org/concept/nba/";
  p.overlap_entities = 35;
  p.left_only_entities = 70;
  p.right_only_entities = 40;
  p.seed = 20150609;
  return p;
}

WorldProfile DbpediaOpencycProfile() {
  WorldProfile p;
  p.name = "dbpedia_opencyc";
  p.left_store_name = "dbpedia";
  p.right_store_name = "opencyc";
  p.left_namespace = "http://dbpedia.org/resource/";
  p.right_namespace = "http://sw.opencyc.org/concept/";
  p.overlap_entities = 800;
  p.left_only_entities = 500;
  p.right_only_entities = 300;
  p.confusable_pairs = 250;
  p.confusable_noise = 0.1;
  p.attributes = MediaSchema(/*noise=*/0.65);
  p.seed = 20150610;
  return p;
}

WorldProfile TinyTestProfile() {
  WorldProfile p;
  p.name = "tiny";
  p.overlap_entities = 40;
  p.left_only_entities = 20;
  p.right_only_entities = 10;
  p.confusable_pairs = 10;
  p.attributes = MediaSchema(/*noise=*/0.5);
  p.seed = 7;
  return p;
}

bool ProfileByName(const std::string& id, WorldProfile* profile) {
  struct Entry {
    const char* id;
    WorldProfile (*factory)();
  };
  static const Entry kEntries[] = {
      {"dbpedia_nytimes", &DbpediaNytimesProfile},
      {"dbpedia_drugbank", &DbpediaDrugbankProfile},
      {"dbpedia_lexvo", &DbpediaLexvoProfile},
      {"opencyc_nytimes", &OpencycNytimesProfile},
      {"opencyc_drugbank", &OpencycDrugbankProfile},
      {"opencyc_lexvo", &OpencycLexvoProfile},
      {"dbpedia_swdf", &DbpediaSwdfProfile},
      {"opencyc_swdf", &OpencycSwdfProfile},
      {"dbpedia_nba_nytimes", &DbpediaNbaNytimesProfile},
      {"opencyc_nba_nytimes", &OpencycNbaNytimesProfile},
      {"dbpedia_opencyc", &DbpediaOpencycProfile},
      {"tiny", &TinyTestProfile},
  };
  for (const Entry& entry : kEntries) {
    if (id == entry.id) {
      *profile = entry.factory();
      return true;
    }
  }
  return false;
}

std::vector<std::string> AllProfileNames() {
  return {"dbpedia_nytimes",  "dbpedia_drugbank",    "dbpedia_lexvo",
          "opencyc_nytimes",  "opencyc_drugbank",    "opencyc_lexvo",
          "dbpedia_swdf",     "opencyc_swdf",        "dbpedia_nba_nytimes",
          "opencyc_nba_nytimes", "dbpedia_opencyc",  "tiny"};
}

}  // namespace alex::datagen
