#include "datagen/world.h"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "common/strings.h"

namespace alex::datagen {
namespace {

using rdf::Term;

constexpr const char* kConsonants[] = {"b", "c",  "d",  "f", "g",  "h",
                                       "k", "l",  "m",  "n", "p",  "r",
                                       "s", "t",  "v",  "z", "st", "tr",
                                       "ch", "br", "dr", "gl"};
constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ia", "ou", "ei"};

std::string Capitalize(std::string word) {
  if (!word.empty() && word[0] >= 'a' && word[0] <= 'z') {
    word[0] = static_cast<char>(word[0] - 'a' + 'A');
  }
  return word;
}

// One generated value, typed.
struct Value {
  AttributeSpec::Kind kind;
  std::string text;       // string kinds
  int64_t number = 0;     // kInteger
  std::string date;       // kDate (ISO)

  Term ToTerm() const {
    switch (kind) {
      case AttributeSpec::Kind::kInteger:
        return Term::IntegerLiteral(number);
      case AttributeSpec::Kind::kDate:
        return Term::DateLiteral(date);
      default:
        return Term::StringLiteral(text);
    }
  }
};

std::string RandomDate(Rng* rng) {
  int year = static_cast<int>(rng->NextInt(1940, 2010));
  int month = static_cast<int>(rng->NextInt(1, 12));
  int day = static_cast<int>(rng->NextInt(1, 28));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

// The canonical value of one attribute for one world entity.
Value MakeValue(const AttributeSpec& spec,
                const std::vector<std::string>& vocab, Rng* rng) {
  Value value;
  value.kind = spec.kind;
  switch (spec.kind) {
    case AttributeSpec::Kind::kName:
      value.text = RandomName(rng);
      break;
    case AttributeSpec::Kind::kPhrase: {
      int words = static_cast<int>(rng->NextInt(2, 4));
      std::vector<std::string> parts;
      for (int w = 0; w < words; ++w) {
        parts.push_back(vocab[rng->NextBounded(vocab.size())]);
      }
      value.text = Join(parts, " ");
      break;
    }
    case AttributeSpec::Kind::kInteger:
      value.number = rng->NextInt(spec.min_value, spec.max_value);
      break;
    case AttributeSpec::Kind::kDate:
      value.date = RandomDate(rng);
      break;
    case AttributeSpec::Kind::kCategory:
      value.text = vocab[rng->NextBounded(vocab.size())];
      break;
  }
  return value;
}

// Perturbs `value` for the right-hand projection.
Value PerturbValue(const AttributeSpec& spec, const Value& value,
                   double strength, const std::vector<std::string>& vocab,
                   Rng* rng) {
  Value out = value;
  switch (spec.kind) {
    case AttributeSpec::Kind::kName: {
      double pick = rng->NextDouble();
      if (pick < 0.4) {
        out.text = ReorderName(value.text);
      } else if (pick < 0.6) {
        out.text = AbbreviateFirstToken(value.text);
      } else {
        out.text = ApplyTypos(value.text, strength, rng);
      }
      break;
    }
    case AttributeSpec::Kind::kPhrase:
      out.text = ApplyTypos(value.text, strength, rng);
      break;
    case AttributeSpec::Kind::kInteger: {
      int64_t span = spec.max_value - spec.min_value + 1;
      int64_t delta = std::max<int64_t>(
          1, static_cast<int64_t>(strength * 0.05 * span));
      out.number = value.number + rng->NextInt(-delta, delta);
      break;
    }
    case AttributeSpec::Kind::kDate: {
      int64_t shift_days = std::max<int64_t>(
          1, static_cast<int64_t>(strength * 120));
      int y, m, d;
      rdf::ParseIsoDate(value.date, &y, &m, &d);
      // Shift within the month/day fields only; keep it a valid-enough date.
      d = static_cast<int>(
          std::clamp<int64_t>(d + rng->NextInt(-shift_days, shift_days) % 27,
                              1, 28));
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
      out.date = buf;
      break;
    }
    case AttributeSpec::Kind::kCategory:
      if (rng->NextBool(strength)) {
        out.text = vocab[rng->NextBounded(vocab.size())];
      }
      break;
  }
  return out;
}

// A world entity: one optional canonical value per attribute, on each side.
struct WorldEntity {
  std::vector<std::optional<Value>> left_values;
  std::vector<std::optional<Value>> right_values;
};

WorldEntity MakeEntity(const WorldProfile& profile,
                       const std::vector<std::vector<std::string>>& vocabs,
                       bool in_left, bool in_right, Rng* rng) {
  WorldEntity entity;
  entity.left_values.resize(profile.attributes.size());
  entity.right_values.resize(profile.attributes.size());
  for (size_t a = 0; a < profile.attributes.size(); ++a) {
    const AttributeSpec& spec = profile.attributes[a];
    Value canonical = MakeValue(spec, vocabs[a], rng);
    if (in_left && rng->NextBool(spec.left_presence)) {
      entity.left_values[a] = canonical;
    }
    if (in_right && rng->NextBool(spec.right_presence)) {
      if (rng->NextBool(spec.right_noise)) {
        entity.right_values[a] =
            PerturbValue(spec, canonical, spec.noise_strength, vocabs[a],
                         rng);
      } else {
        entity.right_values[a] = canonical;
      }
    }
  }
  return entity;
}

void EmitEntity(const WorldProfile& profile, const WorldEntity& entity,
                bool left_side, const std::string& iri,
                rdf::TripleStore* store) {
  const auto& values = left_side ? entity.left_values : entity.right_values;
  Term subject = Term::Iri(iri);
  for (size_t a = 0; a < values.size(); ++a) {
    if (!values[a]) continue;
    const AttributeSpec& spec = profile.attributes[a];
    Term predicate = Term::Iri(left_side ? spec.left_predicate
                                         : spec.right_predicate);
    store->Add(subject, predicate, values[a]->ToTerm());
  }
}

// Opaque right-side local names so IRIs carry no linkage signal.
std::string RightLocalName(uint64_t id) {
  uint64_t mixed = id * 0x9e3779b97f4a7c15ULL;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "n%012llx",
                static_cast<unsigned long long>(mixed >> 16));
  return buf;
}

}  // namespace

std::string RandomWord(Rng* rng) {
  int syllables = static_cast<int>(rng->NextInt(2, 4));
  std::string word;
  for (int s = 0; s < syllables; ++s) {
    word += kConsonants[rng->NextBounded(std::size(kConsonants))];
    word += kVowels[rng->NextBounded(std::size(kVowels))];
  }
  return word;
}

std::string RandomName(Rng* rng) {
  return Capitalize(RandomWord(rng)) + " " + Capitalize(RandomWord(rng));
}

std::string ApplyTypos(const std::string& value, double strength, Rng* rng) {
  std::string out = value;
  if (out.empty()) return out;
  int edits = std::max(
      1, static_cast<int>(strength * 0.25 * static_cast<double>(out.size())));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng->NextBounded(out.size());
    switch (rng->NextBounded(3)) {
      case 0:  // substitute
        out[pos] = static_cast<char>('a' + rng->NextBounded(26));
        break;
      case 1:  // delete
        out.erase(pos, 1);
        break;
      default:  // transpose with the next character
        if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
        break;
    }
  }
  return out;
}

std::string ReorderName(const std::string& value) {
  std::vector<std::string> parts = SplitWords(value);
  if (parts.size() < 2) return value;
  std::string last = parts.back();
  parts.pop_back();
  return last + ", " + Join(parts, " ");
}

std::string AbbreviateFirstToken(const std::string& value) {
  std::vector<std::string> parts = SplitWords(value);
  if (parts.size() < 2 || parts[0].empty()) return value;
  parts[0] = std::string(1, parts[0][0]) + ".";
  return Join(parts, " ");
}

GeneratedWorld Generate(const WorldProfile& profile) {
  Rng rng(profile.seed);
  GeneratedWorld world;
  world.left = rdf::TripleStore(profile.left_store_name);
  world.right = rdf::TripleStore(profile.right_store_name);

  // Per-attribute vocabularies (shared across entities to induce value
  // collisions where vocab_size is small).
  std::vector<std::vector<std::string>> vocabs;
  vocabs.reserve(profile.attributes.size());
  for (const AttributeSpec& spec : profile.attributes) {
    std::vector<std::string> vocab;
    int size = std::max(1, spec.vocab_size);
    vocab.reserve(size);
    for (int v = 0; v < size; ++v) vocab.push_back(RandomWord(&rng));
    vocabs.push_back(std::move(vocab));
  }

  uint64_t next_id = 0;
  auto left_iri = [&profile](uint64_t id) {
    return profile.left_namespace + "e" + std::to_string(id);
  };
  auto right_iri = [&profile](uint64_t id) {
    return profile.right_namespace + RightLocalName(id);
  };

  // 1. Overlap entities: in both sides; ground truth.
  for (size_t i = 0; i < profile.overlap_entities; ++i) {
    uint64_t id = next_id++;
    WorldEntity entity = MakeEntity(profile, vocabs, true, true, &rng);
    std::string l = left_iri(id);
    std::string r = right_iri(id);
    EmitEntity(profile, entity, true, l, &world.left);
    EmitEntity(profile, entity, false, r, &world.right);
    world.ground_truth.push_back(linking::Link{l, r, 1.0});
  }
  // 2. One-side-only distractors.
  for (size_t i = 0; i < profile.left_only_entities; ++i) {
    uint64_t id = next_id++;
    WorldEntity entity = MakeEntity(profile, vocabs, true, false, &rng);
    EmitEntity(profile, entity, true, left_iri(id), &world.left);
  }
  for (size_t i = 0; i < profile.right_only_entities; ++i) {
    uint64_t id = next_id++;
    WorldEntity entity = MakeEntity(profile, vocabs, false, true, &rng);
    EmitEntity(profile, entity, false, right_iri(id), &world.right);
  }
  // 3. Confusable pairs: distinct entities whose values coincide; they are
  // NOT ground truth, and they trap exact-match linkers like PARIS.
  for (size_t i = 0; i < profile.confusable_pairs; ++i) {
    uint64_t id = next_id++;
    WorldEntity entity;
    entity.left_values.resize(profile.attributes.size());
    entity.right_values.resize(profile.attributes.size());
    for (size_t a = 0; a < profile.attributes.size(); ++a) {
      const AttributeSpec& spec = profile.attributes[a];
      Value canonical = MakeValue(spec, vocabs[a], &rng);
      entity.left_values[a] = canonical;
      if (rng.NextBool(profile.confusable_noise)) {
        entity.right_values[a] = PerturbValue(
            spec, canonical, spec.noise_strength, vocabs[a], &rng);
      } else {
        entity.right_values[a] = canonical;
      }
    }
    EmitEntity(profile, entity, true, left_iri(id), &world.left);
    EmitEntity(profile, entity, false, right_iri(id), &world.right);
  }
  return world;
}

namespace {

// EmitEntity's twin for growth schedules: triples go into a vector instead
// of a store, so one schedule can be applied to many store pairs.
void AppendEntityTriples(const WorldProfile& profile,
                         const WorldEntity& entity, bool left_side,
                         const std::string& iri,
                         std::vector<GrowthTriple>* out) {
  const auto& values = left_side ? entity.left_values : entity.right_values;
  Term subject = Term::Iri(iri);
  for (size_t a = 0; a < values.size(); ++a) {
    if (!values[a]) continue;
    const AttributeSpec& spec = profile.attributes[a];
    out->push_back(GrowthTriple{
        subject,
        Term::Iri(left_side ? spec.left_predicate : spec.right_predicate),
        values[a]->ToTerm()});
  }
}

}  // namespace

GrowthSchedule GrowWorld(const WorldProfile& profile, uint64_t seed,
                         double fraction, int epochs) {
  // Replay the vocabulary prefix of Generate(profile) draw-for-draw, so the
  // new entities' values come from the base world's vocabularies.
  Rng vocab_rng(profile.seed);
  std::vector<std::vector<std::string>> vocabs;
  vocabs.reserve(profile.attributes.size());
  for (const AttributeSpec& spec : profile.attributes) {
    std::vector<std::string> vocab;
    int size = std::max(1, spec.vocab_size);
    vocab.reserve(size);
    for (int v = 0; v < size; ++v) vocab.push_back(RandomWord(&vocab_rng));
    vocabs.push_back(std::move(vocab));
  }

  // Growth draws come from their own stream so schedules with different
  // seeds diverge while sharing the vocabularies.
  Rng rng(profile.seed ^ (seed * 0x9e3779b97f4a7c15ULL + 0x5851f42d4c957f2dULL));
  uint64_t next_id = profile.overlap_entities + profile.left_only_entities +
                     profile.right_only_entities + profile.confusable_pairs;
  const size_t per_epoch = std::max<size_t>(
      1, static_cast<size_t>(fraction *
                             static_cast<double>(profile.overlap_entities)));

  GrowthSchedule schedule;
  schedule.epochs.resize(std::max(epochs, 0));
  for (GrowthEpoch& epoch : schedule.epochs) {
    for (size_t i = 0; i < per_epoch; ++i) {
      uint64_t id = next_id++;
      WorldEntity entity = MakeEntity(profile, vocabs, true, true, &rng);
      std::string l = profile.left_namespace + "e" + std::to_string(id);
      std::string r = profile.right_namespace + RightLocalName(id);
      AppendEntityTriples(profile, entity, true, l, &epoch.left_triples);
      AppendEntityTriples(profile, entity, false, r, &epoch.right_triples);
      epoch.new_left_subjects.push_back(std::move(l));
      epoch.new_right_subjects.push_back(std::move(r));
      epoch.new_ground_truth.push_back(
          linking::Link{epoch.new_left_subjects.back(),
                        epoch.new_right_subjects.back(), 1.0});
    }
  }
  return schedule;
}

void ApplyGrowthEpoch(const GrowthEpoch& epoch, rdf::TripleStore* left,
                      rdf::TripleStore* right) {
  rdf::IngestBatch left_batch;
  left_batch.adds.reserve(epoch.left_triples.size());
  for (const GrowthTriple& t : epoch.left_triples) {
    left_batch.adds.push_back(rdf::Triple{left->InternTerm(t.subject),
                                          left->InternTerm(t.predicate),
                                          left->InternTerm(t.object)});
  }
  rdf::IngestBatch right_batch;
  right_batch.adds.reserve(epoch.right_triples.size());
  for (const GrowthTriple& t : epoch.right_triples) {
    right_batch.adds.push_back(rdf::Triple{right->InternTerm(t.subject),
                                           right->InternTerm(t.predicate),
                                           right->InternTerm(t.object)});
  }
  left->Ingest(left_batch);
  right->Ingest(right_batch);
}

}  // namespace alex::datagen
