// Synthetic linked-data generation.
//
// The paper evaluates on LOD data sets (DBpedia, OpenCyc, NYTimes, Drugbank,
// Lexvo, Semantic Web Dogfood, NBA subsets — Table 1) that are not available
// offline and are far beyond single-core scale. This generator substitutes
// them (see DESIGN.md): it creates a population of "world entities" and
// projects each into two RDF data sets with distinct predicate vocabularies
// and controllable noise, which yields
//   * ground truth for free (pairs projected from the same world entity),
//   * heterogeneity between the two sides (different predicates, formats),
//   * regimes that steer the quality of PARIS' initial links:
//       - `right_noise` garbles values on the right side → PARIS (which
//         needs exact value matches) misses links → low recall;
//       - `confusable_pairs` emits left/right entity pairs with identical
//         values that are NOT the same real-world entity → PARIS links them
//         → low precision.
#ifndef ALEX_DATAGEN_WORLD_H_
#define ALEX_DATAGEN_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "linking/link.h"
#include "rdf/triple_store.h"

namespace alex::datagen {

// One attribute of the world schema and how it projects into the two sides.
struct AttributeSpec {
  enum class Kind {
    kName,      // person-like "First Last" synthetic name
    kPhrase,    // 2-4 words drawn from a bounded vocabulary
    kInteger,   // uniform integer in [min_value, max_value]
    kDate,      // random ISO date in [1940, 2010]
    kCategory,  // one of `vocab_size` category labels (low selectivity —
                // the paper's (rdf:type, rdf:type) example)
  };

  std::string left_predicate;
  std::string right_predicate;
  Kind kind = Kind::kName;
  // Probability the attribute is present on each side (attribute dropout).
  double left_presence = 1.0;
  double right_presence = 1.0;
  // Probability that the right-side copy of the value is perturbed, and how
  // strongly (0..1; drives the number of edit operations).
  double right_noise = 0.0;
  double noise_strength = 0.3;
  // kPhrase / kCategory vocabulary size (small values ⇒ many collisions).
  int vocab_size = 500;
  // kInteger range.
  int min_value = 0;
  int max_value = 2000;
};

struct WorldProfile {
  std::string name = "world";
  std::string left_store_name = "left";
  std::string right_store_name = "right";
  std::string left_namespace = "http://left.example.org/resource/";
  std::string right_namespace = "http://right.example.org/resource/";
  // Entities present in both data sets (these are the ground truth links).
  size_t overlap_entities = 500;
  // Entities present in only one side (distractors).
  size_t left_only_entities = 200;
  size_t right_only_entities = 200;
  // Pairs of distinct left/right entities with (nearly) identical attribute
  // values that are NOT the same entity: they trap exact-match linkers.
  size_t confusable_pairs = 0;
  // How many attribute values of a confusable pair are perturbed (0 keeps
  // them exactly identical).
  double confusable_noise = 0.0;
  std::vector<AttributeSpec> attributes;
  uint64_t seed = 1;
};

// The generated data set pair plus the ground truth.
struct GeneratedWorld {
  rdf::TripleStore left;
  rdf::TripleStore right;
  std::vector<linking::Link> ground_truth;

  GeneratedWorld() : left("left"), right("right") {}
  GeneratedWorld(GeneratedWorld&&) = default;
  GeneratedWorld& operator=(GeneratedWorld&&) = default;
};

// Generates the data set pair described by `profile`. Deterministic in
// profile.seed.
GeneratedWorld Generate(const WorldProfile& profile);

// ---- World growth (live triple ingest) -----------------------------------
//
// A growth schedule extends a Generate(profile) world with NEW overlap-type
// entities — fresh IRIs on both sides plus their ground-truth links —
// without ever touching the triples of pre-existing entities (the additive
// contract AlexEngine::IngestTriples enforces). The same schedule object
// drives the ingest-differential tests and bench_ingest, so both see
// byte-identical growth.

// One triple of a growth epoch, in term (not id) form: ids are assigned by
// the store the epoch is applied to.
struct GrowthTriple {
  rdf::Term subject;
  rdf::Term predicate;
  rdf::Term object;
};

// One ingest epoch: the new entities' triples for each side, the subject
// IRIs that appear for the first time, and the ground-truth links they add.
struct GrowthEpoch {
  std::vector<GrowthTriple> left_triples;
  std::vector<GrowthTriple> right_triples;
  std::vector<std::string> new_left_subjects;
  std::vector<std::string> new_right_subjects;
  std::vector<linking::Link> new_ground_truth;
};

struct GrowthSchedule {
  std::vector<GrowthEpoch> epochs;
};

// Builds `epochs` growth epochs for the world Generate(profile) produced,
// each adding max(1, fraction * profile.overlap_entities) new overlap
// entities. Entity ids continue after the base world's, and the attribute
// vocabularies are replayed from profile.seed, so values come from the same
// distribution as the base world. Deterministic in (profile.seed, seed,
// fraction, epochs); independent of any store state.
GrowthSchedule GrowWorld(const WorldProfile& profile, uint64_t seed,
                         double fraction, int epochs);

// Interns the epoch's terms into the two stores and ingests the triples
// (one IngestBatch per store). New subject IRIs intern AFTER every
// pre-existing term, which is exactly the TermId-watermark contract
// AlexEngine::IngestTriples detects growth by.
void ApplyGrowthEpoch(const GrowthEpoch& epoch, rdf::TripleStore* left,
                      rdf::TripleStore* right);

// Value-noise helpers, exported for tests.
// Applies typos (substitute/delete/transpose) to ~strength * len characters.
std::string ApplyTypos(const std::string& value, double strength, Rng* rng);
// Reorders "First Last" to "Last, First".
std::string ReorderName(const std::string& value);
// Abbreviates the first token to an initial ("LeBron James" -> "L. James").
std::string AbbreviateFirstToken(const std::string& value);
// Random pronounceable word of 2-4 syllables.
std::string RandomWord(Rng* rng);
// Random "First Last" name.
std::string RandomName(Rng* rng);

}  // namespace alex::datagen

#endif  // ALEX_DATAGEN_WORLD_H_
