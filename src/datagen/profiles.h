// Data set profiles: one per data set pair in the paper's evaluation
// (Table 1 and §7). Each profile is a scaled-down synthetic stand-in whose
// noise regime reproduces the *starting quality* of the PARIS candidate
// links the paper reports for that pair:
//
//   pair                         paper regime (Fig.)        mechanism here
//   DBpedia - NYTimes            good P, low R   (2a)       heavy value noise
//   DBpedia - Drugbank           low P, high R   (2b)       confusable pairs
//   DBpedia - Lexvo              both low        (2c)       noise + confusables
//   OpenCyc - NYTimes/Drugbank/  same shapes     (3a-c)     smaller variants
//            Lexvo
//   DBpedia/OpenCyc - SWDF       small domains   (4a,b)     small, mild noise
//   DBpedia/OpenCyc (NBA) - NYT  small domains   (4c,d)     small, noisy
//   DBpedia - OpenCyc            stress test     (8)        large, mixed
//
// The LEFT store of every profile is the larger data set (AlexEngine
// partitions the left store).
#ifndef ALEX_DATAGEN_PROFILES_H_
#define ALEX_DATAGEN_PROFILES_H_

#include <string>
#include <vector>

#include "datagen/world.h"

namespace alex::datagen {

WorldProfile DbpediaNytimesProfile();
WorldProfile DbpediaDrugbankProfile();
WorldProfile DbpediaLexvoProfile();
WorldProfile OpencycNytimesProfile();
WorldProfile OpencycDrugbankProfile();
WorldProfile OpencycLexvoProfile();
WorldProfile DbpediaSwdfProfile();
WorldProfile OpencycSwdfProfile();
WorldProfile DbpediaNbaNytimesProfile();
WorldProfile OpencycNbaNytimesProfile();
WorldProfile DbpediaOpencycProfile();

// A tiny profile for unit tests and the quickstart example (fast to build).
WorldProfile TinyTestProfile();

// Lookup by id ("dbpedia_nytimes", ...). Returns true and fills `profile`
// when the id is known.
bool ProfileByName(const std::string& id, WorldProfile* profile);

// All profile ids, in the order above.
std::vector<std::string> AllProfileNames();

}  // namespace alex::datagen

#endif  // ALEX_DATAGEN_PROFILES_H_
