// Error handling primitives for the ALEX library.
//
// The codebase does not use exceptions. Fallible operations return a Status,
// or a Result<T> when they also produce a value. Both are cheap to move and
// carry a code plus a human-readable message.
//
// Example:
//   alex::Result<TripleStore> store = LoadNTriples(path);
//   if (!store.ok()) return store.status();
//   Use(store.value());
#ifndef ALEX_COMMON_STATUS_H_
#define ALEX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace alex {

// Canonical error space, loosely following absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kParseError,
  // A service (e.g. a remote federation endpoint) is temporarily unable to
  // answer; the operation may succeed if retried.
  kUnavailable,
  // The operation ran past its time budget (a per-probe timeout or a
  // per-query deadline).
  kDeadlineExceeded,
};

// Returns a stable lowercase name for `code` ("ok", "parse_error", ...).
const char* StatusCodeName(StatusCode code);

// A Status is either OK or an error code with a message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status. Accessing the value of
// an error result aborts in debug builds (assert) and is undefined otherwise;
// callers must check ok() first.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error status keeps call sites
  // terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;           // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Propagates an error status from an expression producing a Status.
#define ALEX_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::alex::Status _alex_status = (expr);         \
    if (!_alex_status.ok()) return _alex_status;  \
  } while (false)

}  // namespace alex

#endif  // ALEX_COMMON_STATUS_H_
