#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace alex {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, size_t min_chunk,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (min_chunk < 1) min_chunk = 1;
  // ~4 chunks per worker balances uneven per-index cost without swamping
  // the queue with tiny tasks.
  const size_t target_chunks = workers_.size() * 4;
  size_t chunk = std::max(min_chunk, (n + target_chunks - 1) / target_chunks);
  if (chunk >= n) {
    fn(0, n);  // not worth a task switch; run inline
    return;
  }
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    Schedule([&fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace alex
