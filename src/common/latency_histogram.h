// Fixed-bucket log2 latency histogram for serving-path percentiles.
//
// Latencies span several orders of magnitude under load, so the benches
// report percentiles, not means: a mean hides the p99 tail that decides
// whether "millions of users" see a responsive system. The histogram uses
// one bucket per power of two of microseconds (64 buckets cover the whole
// int64 range), which keeps Record() to two atomic adds — cheap enough for
// every query on the serving hot path — while percentile error stays within
// the bucket width (a factor of two, plus linear interpolation inside the
// bucket).
//
// All counters are relaxed atomics: concurrent Record() calls from many
// query streams never synchronize with each other, and MergeFrom() folds
// per-thread histograms into one. Reading percentiles while writers are
// active yields a consistent-enough approximation; the benches read after
// the streams drain.
#ifndef ALEX_COMMON_LATENCY_HISTOGRAM_H_
#define ALEX_COMMON_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace alex {

class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  LatencyHistogram() = default;
  // Atomics are not copyable; histograms are merged, not assigned.
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Records one sample. Bucket i holds samples in [2^(i-1), 2^i) micros
  // (bucket 0 holds <= 0 and 0-microsecond samples).
  void Record(int64_t micros) {
    const uint64_t value = micros > 0 ? static_cast<uint64_t>(micros) : 0;
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  // Folds `other` into this histogram (per-thread histograms -> totals).
  void MergeFrom(const LatencyHistogram& other) {
    for (size_t i = 0; i < kBuckets; ++i) {
      const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
      if (n > 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    uint64_t theirs = other.max_.load(std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (theirs > seen &&
           !max_.compare_exchange_weak(seen, theirs,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const {
    return sum_.load(std::memory_order_relaxed);
  }
  uint64_t max_micros() const {
    return max_.load(std::memory_order_relaxed);
  }
  double MeanMicros() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum_micros()) / n;
  }

  // Latency at quantile `q` in [0, 1] (0.5 = p50, 0.99 = p99), linearly
  // interpolated inside the winning bucket and clamped to the observed
  // maximum. Returns 0 when empty.
  double PercentileMicros(double q) const {
    const uint64_t total = count();
    if (total == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target sample, 1-based; q = 1 maps to the last sample.
    const double rank = q * static_cast<double>(total);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      const uint64_t in_bucket =
          buckets_[i].load(std::memory_order_relaxed);
      if (in_bucket == 0) continue;
      if (static_cast<double>(cumulative + in_bucket) >= rank) {
        const double lower =
            i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (i - 1));
        const double width = i == 0 ? 1.0 : lower;  // bucket spans [L, 2L)
        const double into =
            (rank - static_cast<double>(cumulative)) / in_bucket;
        double estimate = lower + width * into;
        const double observed_max = static_cast<double>(max_micros());
        return estimate < observed_max ? estimate : observed_max;
      }
      cumulative += in_bucket;
    }
    return static_cast<double>(max_micros());
  }

 private:
  static size_t BucketFor(uint64_t micros) {
    // bit_width(v) = floor(log2(v)) + 1; 0 lands in bucket 0.
    return static_cast<size_t>(std::bit_width(micros)) < kBuckets
               ? static_cast<size_t>(std::bit_width(micros))
               : kBuckets - 1;
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace alex

#endif  // ALEX_COMMON_LATENCY_HISTOGRAM_H_
