// A fixed-size thread pool used to explore data partitions in parallel
// (paper §6.2, "Partitioning the Search Space").
#ifndef ALEX_COMMON_THREAD_POOL_H_
#define ALEX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace alex {

class ThreadPool {
 public:
  // Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution. Must not be called after Wait() has
  // started returning and the pool is being destroyed.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished.
  void Wait();

  // Splits [0, n) into contiguous chunks of at least `min_chunk` indices,
  // schedules one task per chunk, and blocks until all have finished.
  // `fn(begin, end)` runs concurrently on disjoint chunks. The caller must
  // be the pool's only scheduler for the duration of the call (this uses
  // Wait(), which waits for *all* scheduled work).
  void ParallelFor(size_t n, size_t min_chunk,
                   const std::function<void(size_t, size_t)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace alex

#endif  // ALEX_COMMON_THREAD_POOL_H_
