// Deterministic pseudo-random number generation.
//
// All stochastic components of ALEX (the ε-greedy policy, the feedback
// oracle, data generation) take an explicit Rng so experiments are exactly
// reproducible from a seed. The generator is xoshiro256**, seeded through
// SplitMix64.
#ifndef ALEX_COMMON_RNG_H_
#define ALEX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace alex {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0xa1e05eedULL) { Reseed(seed); }

  // Re-initializes the state from `seed`.
  void Reseed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  // Approximately normal draw (sum of uniforms), mean 0, stddev 1.
  double NextGaussian();

  // Splits off an independent child generator; useful to give each data
  // partition / thread its own stream.
  Rng Fork();

  // Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace alex

#endif  // ALEX_COMMON_RNG_H_
