// Minimal leveled logging to stderr.
//
// Usage:
//   ALEX_LOG(INFO) << "loaded " << n << " triples";
//   ALEX_LOG(FATAL) << "unreachable";   // aborts after printing
//
// The global minimum level defaults to kInfo and can be raised to silence
// benchmarks (SetMinLogLevel(LogLevel::kWarning)).
#ifndef ALEX_COMMON_LOGGING_H_
#define ALEX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace alex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3,
                      kFatal = 4 };

// Sets/gets the global minimum level; messages below it are dropped.
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

namespace internal_logging {

// Severity aliases consumed by the ALEX_LOG macro token-pasting.
inline constexpr LogLevel kLogLevelDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLogLevelINFO = LogLevel::kInfo;
inline constexpr LogLevel kLogLevelWARNING = LogLevel::kWarning;
inline constexpr LogLevel kLogLevelERROR = LogLevel::kError;
inline constexpr LogLevel kLogLevelFATAL = LogLevel::kFatal;

// Accumulates one log line and flushes it (thread-safely) on destruction.
// A kFatal message aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace alex

#define ALEX_LOG(severity)                                          \
  ::alex::internal_logging::LogMessage(                             \
      ::alex::internal_logging::kLogLevel##severity, __FILE__,      \
      __LINE__)                                                     \
      .stream()

// CHECK-style assertion that is active in all build types.
#define ALEX_CHECK(cond)                                              \
  if (cond) {                                                         \
  } else /* NOLINT */                                                 \
    ::alex::internal_logging::LogMessage(::alex::LogLevel::kFatal,    \
                                         __FILE__, __LINE__)          \
        .stream()                                                     \
        << "Check failed: " #cond " "

#endif  // ALEX_COMMON_LOGGING_H_
