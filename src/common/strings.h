// Small string utilities shared across the library.
#ifndef ALEX_COMMON_STRINGS_H_
#define ALEX_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace alex {

// Returns a lowercase copy of `s` (ASCII only).
std::string ToLowerAscii(std::string_view s);

// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view StripAsciiWhitespace(std::string_view s);

// Splits `s` on `delim`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char delim);

// Splits `s` on runs of ASCII whitespace, dropping empty pieces.
std::vector<std::string> SplitWords(std::string_view s);

// Like SplitWords, but also strips non-alphanumeric characters from both
// ends of every token and drops tokens that become empty ("James," ->
// "James"). Used by the similarity tokenizers so that punctuation attached
// to words ("Last, First" name formats) does not break token matching.
std::vector<std::string> SplitWordsNormalized(std::string_view s);

// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Parses `s` as a double. Returns false on failure or trailing garbage.
bool ParseDouble(std::string_view s, double* out);

// Parses `s` as int64. Returns false on failure or trailing garbage.
bool ParseInt64(std::string_view s, long long* out);

}  // namespace alex

#endif  // ALEX_COMMON_STRINGS_H_
