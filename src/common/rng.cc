#include "common/rng.h"

#include <cmath>

namespace alex {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256** step.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling avoids modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Irwin-Hall approximation: sum of 12 uniforms minus 6.
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += NextDouble();
  return sum - 6.0;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace alex
