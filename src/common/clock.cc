#include "common/clock.h"

#include <chrono>

namespace alex {

int64_t SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const SystemClock* SystemClock::Get() {
  static const SystemClock* clock = new SystemClock;
  return clock;
}

}  // namespace alex
