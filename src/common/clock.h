// Time sources.
//
// Everything in ALEX that reasons about time — retry backoff, circuit
// breaker cooldowns, simulated endpoint latency, deadline budgets — goes
// through the Clock interface so tests and the deterministic fault
// simulator can run in *virtual* time: no wall-clock sleeps anywhere, and a
// fixed seed replays the exact same timeline at any thread count.
//
//   SystemClock  - monotonic wall time (std::chrono::steady_clock).
//   VirtualClock - a manually advanced microsecond counter. Thread-safe;
//                  Advance() is an atomic add, so concurrent advancing
//                  threads accumulate a deterministic total even though
//                  intermediate readings interleave.
#ifndef ALEX_COMMON_CLOCK_H_
#define ALEX_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace alex {

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic time in microseconds. The epoch is unspecified (SystemClock:
  // process start-ish; VirtualClock: its construction value); only
  // differences are meaningful.
  virtual int64_t NowMicros() const = 0;
};

class SystemClock final : public Clock {
 public:
  int64_t NowMicros() const override;

  // Shared process-wide instance (the clock is stateless).
  static const SystemClock* Get();
};

class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }

  // Moves time forward by `micros` (>= 0). Returns the new now.
  int64_t Advance(int64_t micros) {
    return now_.fetch_add(micros, std::memory_order_relaxed) + micros;
  }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace alex

#endif  // ALEX_COMMON_CLOCK_H_
