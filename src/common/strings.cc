#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace alex {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(s.substr(start));
      break;
    }
    pieces.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::vector<std::string> SplitWords(std::string_view s) {
  std::vector<std::string> words;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) words.emplace_back(s.substr(start, i - start));
  }
  return words;
}

std::vector<std::string> SplitWordsNormalized(std::string_view s) {
  std::vector<std::string> words;
  for (std::string& word : SplitWords(s)) {
    size_t begin = 0;
    size_t end = word.size();
    while (begin < end &&
           !std::isalnum(static_cast<unsigned char>(word[begin]))) {
      ++begin;
    }
    while (end > begin &&
           !std::isalnum(static_cast<unsigned char>(word[end - 1]))) {
      --end;
    }
    if (end > begin) words.push_back(word.substr(begin, end - begin));
  }
  return words;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseDouble(std::string_view s, double* out) {
  std::string buf(StripAsciiWhitespace(s));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view s, long long* out) {
  std::string buf(StripAsciiWhitespace(s));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

}  // namespace alex
