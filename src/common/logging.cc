#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace alex {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

// Serializes whole lines so concurrent threads do not interleave output.
std::mutex& OutputMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel GetMinLogLevel() { return g_min_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetMinLogLevel()) {
    std::lock_guard<std::mutex> lock(OutputMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace alex
