// Wall-clock stopwatch for the execution-time experiments (§7.3).
#ifndef ALEX_COMMON_STOPWATCH_H_
#define ALEX_COMMON_STOPWATCH_H_

#include <chrono>

namespace alex {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace alex

#endif  // ALEX_COMMON_STOPWATCH_H_
