// Stopwatch for the execution-time experiments (§7.3).
//
// By default it reads the wall clock (steady_clock); constructed with a
// Clock it reads that instead, so retry/backoff and fault-simulation tests
// measure *virtual* time with zero wall-clock sleeps.
#ifndef ALEX_COMMON_STOPWATCH_H_
#define ALEX_COMMON_STOPWATCH_H_

#include <chrono>

#include "common/clock.h"

namespace alex {

class Stopwatch {
 public:
  Stopwatch() : start_(SteadyClock::now()) {}

  // Reads `clock` (which must outlive the stopwatch) instead of the wall
  // clock.
  explicit Stopwatch(const Clock* clock)
      : clock_(clock), start_micros_(clock->NowMicros()) {}

  // Restarts the stopwatch.
  void Reset() {
    if (clock_ != nullptr) {
      start_micros_ = clock_->NowMicros();
    } else {
      start_ = SteadyClock::now();
    }
  }

  // Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    if (clock_ != nullptr) {
      return static_cast<double>(clock_->NowMicros() - start_micros_) * 1e-6;
    }
    return std::chrono::duration<double>(SteadyClock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using SteadyClock = std::chrono::steady_clock;
  const Clock* clock_ = nullptr;
  SteadyClock::time_point start_;
  int64_t start_micros_ = 0;
};

}  // namespace alex

#endif  // ALEX_COMMON_STOPWATCH_H_
