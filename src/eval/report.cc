#include "eval/report.h"

#include <fstream>
#include <iomanip>
#include <ostream>

namespace alex::eval {

void PrintHeader(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

void PrintSeries(std::ostream& os, const std::string& title,
                 const ExperimentResult& result) {
  PrintHeader(os, title);
  os << std::setw(8) << "episode" << std::setw(11) << "precision"
     << std::setw(9) << "recall" << std::setw(11) << "f-measure"
     << std::setw(8) << "neg%" << std::setw(12) << "candidates" << "\n";
  os << std::fixed;
  for (const EpisodePoint& point : result.series) {
    os << std::setw(8) << point.episode << std::setprecision(3)
       << std::setw(11) << point.quality.precision << std::setw(9)
       << point.quality.recall << std::setw(11) << point.quality.f_measure
       << std::setprecision(1) << std::setw(8)
       << point.stats.NegativeFeedbackPercent() << std::setw(12)
       << point.quality.candidates;
    if (result.relaxed_episode >= 0 &&
        point.episode == result.relaxed_episode) {
      os << "   <- relaxed convergence (<5% change)";
    }
    os << "\n";
  }
  os.unsetf(std::ios::fixed);
  os << std::setprecision(6);
}

void PrintSummary(std::ostream& os, const ExperimentResult& result) {
  os << "ground truth links:      " << result.ground_truth_size << "\n"
     << "initial candidate links: " << result.initial_link_count << " ("
     << result.initial_correct << " correct)\n"
     << "new links discovered:    " << result.new_links_discovered << "\n"
     << "episodes run:            " << result.episodes
     << (result.converged ? " (converged)" : " (max episodes reached)")
     << "\n"
     << "relaxed convergence:     "
     << (result.relaxed_episode >= 0
             ? "episode " + std::to_string(result.relaxed_episode)
             : std::string("never"))
     << "\n"
     << "pre-processing:          " << std::fixed << std::setprecision(2)
     << result.init_seconds << " s (" << result.total_pairs
     << " raw pairs -> " << result.filtered_pairs << " in filtered space)\n"
     << "episode loop:            " << result.total_seconds << " s\n";
  os.unsetf(std::ios::fixed);
  os << std::setprecision(6);
  // Degradation block, printed only when the run actually hit endpoint
  // faults (query-driven loop over unreliable endpoints).
  size_t incomplete = 0, skipped = 0, retries = 0, opens = 0;
  for (const EpisodePoint& point : result.series) {
    incomplete += point.stats.incomplete_queries;
    skipped += point.stats.skipped_feedback;
    retries += point.stats.query_retries;
    opens += point.stats.breaker_opens;
  }
  if (incomplete > 0 || retries > 0 || opens > 0) {
    os << "incomplete queries:      " << incomplete << " (" << skipped
       << " feedback verdicts withheld)\n"
       << "endpoint retries:        " << retries << "\n"
       << "breaker opens:           " << opens << "\n";
  }
  // Serving block, printed only when the run went through the serving tier
  // (the final episode then carries cumulative epoch counters).
  if (!result.series.empty() &&
      result.series.back().stats.epochs_published > 0) {
    const core::EpisodeStats& last = result.series.back().stats;
    os << "epochs published:        " << last.epochs_published << "\n"
       << "snapshots retired:       " << last.snapshots_retired << "\n"
       << "max concurrent readers:  " << last.max_concurrent_readers << "\n";
  }
  // Aggregated-feedback block, printed only when votes flowed through the
  // FeedbackAggregator (vote-driven loop; counters are cumulative, so the
  // final episode carries the totals).
  if (!result.series.empty() &&
      result.series.back().stats.votes_recorded > 0) {
    const core::EpisodeStats& last = result.series.back().stats;
    os << "votes recorded:          " << last.votes_recorded << "\n"
       << "verdicts emitted:        " << last.verdicts_emitted << "\n"
       << "votes suppressed:        " << last.votes_suppressed << "\n"
       << "tallies evicted:         " << last.tallies_evicted << " ("
       << last.aggregator_pending << " still pending)\n";
  }
  // Live-ingest block, printed only when the run grew the stores through
  // IngestTriples (counters are cumulative; the final episode has totals).
  if (!result.series.empty() &&
      result.series.back().stats.ingest_epochs > 0) {
    const core::EpisodeStats& last = result.series.back().stats;
    os << "ingest epochs:           " << last.ingest_epochs << "\n"
       << "triples ingested:        " << last.triples_ingested << "\n"
       << "entities added:          " << last.entities_added << "\n"
       << "blocking merges:         " << last.blocking_merges << "\n"
       << "space overflow entries:  " << last.space_overflow_pairs << "\n";
  }
}

void WriteSeriesCsv(std::ostream& os, const ExperimentResult& result) {
  os << "episode,precision,recall,f_measure,neg_feedback_pct,candidates,"
        "seconds,incomplete_queries,skipped_feedback,query_retries,"
        "breaker_opens,epochs_published,snapshots_retired,"
        "max_concurrent_readers,votes_recorded,verdicts_emitted,"
        "aggregator_pending,votes_suppressed,tallies_evicted,"
        "triples_ingested,entities_added,blocking_merges,"
        "space_overflow_pairs,ingest_epochs\n";
  for (const EpisodePoint& point : result.series) {
    os << point.episode << ',' << point.quality.precision << ','
       << point.quality.recall << ',' << point.quality.f_measure << ','
       << point.stats.NegativeFeedbackPercent() << ','
       << point.quality.candidates << ',' << point.stats.seconds << ','
       << point.stats.incomplete_queries << ','
       << point.stats.skipped_feedback << ',' << point.stats.query_retries
       << ',' << point.stats.breaker_opens << ','
       << point.stats.epochs_published << ','
       << point.stats.snapshots_retired << ','
       << point.stats.max_concurrent_readers << ','
       << point.stats.votes_recorded << ',' << point.stats.verdicts_emitted
       << ',' << point.stats.aggregator_pending << ','
       << point.stats.votes_suppressed << ','
       << point.stats.tallies_evicted << ','
       << point.stats.triples_ingested << ','
       << point.stats.entities_added << ','
       << point.stats.blocking_merges << ','
       << point.stats.space_overflow_pairs << ','
       << point.stats.ingest_epochs << "\n";
  }
}

bool SaveSeriesCsv(const std::string& path,
                   const ExperimentResult& result) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  WriteSeriesCsv(out, result);
  return static_cast<bool>(out);
}

}  // namespace alex::eval
