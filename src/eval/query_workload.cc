#include "eval/query_workload.h"

#include <algorithm>
#include <unordered_set>

#include "common/stopwatch.h"
#include "federation/federated_engine.h"
#include "federation/query_cache.h"
#include "rdf/entity_view.h"

namespace alex::eval {
namespace {

// Escapes a literal value for embedding in a SPARQL string.
std::string QuoteLiteral(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

}  // namespace

std::vector<WorkloadQuery> GenerateWorkload(
    const datagen::GeneratedWorld& world, const WorkloadOptions& options) {
  Rng rng(options.seed);
  std::vector<WorkloadQuery> queries;

  // Right-side predicates to project (vocabulary of the right store).
  std::vector<std::string> right_predicates;
  for (rdf::TermId p : world.right.Predicates()) {
    right_predicates.push_back(
        world.right.dictionary().term(p).lexical());
  }
  if (right_predicates.empty()) return queries;

  std::vector<rdf::TermId> left_subjects = world.left.Subjects();
  std::unordered_set<std::string> seen;
  size_t attempts = 0;
  while (queries.size() < options.num_queries &&
         attempts < options.num_queries * 10) {
    ++attempts;
    rdf::TermId subject =
        left_subjects[rng.NextBounded(left_subjects.size())];
    rdf::Entity entity = rdf::GetEntity(world.left, subject);
    if (entity.attributes.empty()) continue;
    const rdf::Attribute& attr =
        entity.attributes[rng.NextBounded(entity.attributes.size())];
    const rdf::Term& predicate =
        world.left.dictionary().term(attr.predicate);
    const rdf::Term& value = world.left.dictionary().term(attr.object);
    if (!value.is_literal()) continue;

    const std::string& right_predicate =
        right_predicates[rng.NextBounded(right_predicates.size())];
    WorkloadQuery query;
    query.about_left_entity =
        world.left.dictionary().term(subject).lexical();
    query.text = "SELECT ?val WHERE { ?e <" + predicate.lexical() + "> " +
                 QuoteLiteral(value.lexical()) + " . ?e <" +
                 right_predicate + "> ?val }";
    if (seen.insert(query.text).second) {
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

ExperimentResult RunQueryDrivenExperiment(
    core::AlexEngine* engine, const datagen::GeneratedWorld& world,
    const feedback::GroundTruth& truth, const QueryDrivenOptions& options) {
  ExperimentResult result;
  result.profile_name = "query_driven";
  result.ground_truth_size = truth.size();
  result.total_pairs = engine->total_pair_count();
  result.filtered_pairs = engine->filtered_pair_count();
  result.init_seconds = engine->init_seconds();

  std::vector<linking::Link> initial_links = engine->CandidateLinks();
  result.initial_link_count = initial_links.size();
  for (const linking::Link& link : initial_links) {
    if (truth.Contains(link)) ++result.initial_correct;
  }

  std::vector<WorkloadQuery> workload =
      GenerateWorkload(world, options.workload);
  feedback::Oracle oracle(&truth, options.feedback_error_rate,
                          options.oracle_seed);
  Rng rng(options.workload.seed ^ 0x5eedf00dULL);

  EpisodePoint start;
  start.episode = 0;
  start.quality = Evaluate(engine->CandidateLinks(), truth);
  result.series.push_back(start);

  // Persistent federation state. The link set is maintained incrementally:
  // the engine reports net candidate membership changes at every episode
  // boundary (EndExternalEpisode), so queries within an episode all see the
  // same links (the paper evaluates the policy within an episode and only
  // changes it between episodes) without re-materializing CandidateLinks().
  // The same deltas invalidate exactly the cached query results whose
  // consulted link neighborhoods changed.
  fed::LinkSet links;
  for (const linking::Link& link : initial_links) links.Add(link);
  fed::FederatedQueryCache cache;
  std::vector<const rdf::TripleStore*> sources = {&world.left, &world.right};
  fed::FederatedEngine fed_engine(sources, &links);
  if (options.use_query_cache) fed_engine.set_cache(&cache);
  fed::FederatedOptions fed_options;
  fed_options.pool = options.pool;
  engine->SetLinkChangeObserver(
      [&links, &cache](const linking::Link& link, bool added) {
        if (added) {
          links.Add(link);
        } else {
          links.Remove(link.left, link.right);
        }
        cache.InvalidateLink(link);
      });

  Stopwatch run_timer;
  size_t previous_candidates = engine->CandidateCount();
  for (int episode = 1; episode <= options.max_episodes; ++episode) {
    core::EpisodeStats stats;
    stats.episode = episode;
    engine->BeginExternalEpisode();

    std::vector<size_t> order(workload.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(&order);

    // Each link is judged at most once per episode: different answers often
    // share the same provenance link, and re-judging it adds no
    // information (mirrors the engine's first-visit semantics).
    std::unordered_set<linking::Link, linking::LinkHash> judged;
    for (size_t index : order) {
      if (stats.feedback_items >= options.episode_size) break;
      Result<std::vector<fed::FederatedAnswer>> answers =
          fed_engine.ExecuteText(workload[index].text, fed_options);
      if (!answers.ok()) continue;
      for (const fed::FederatedAnswer& answer : answers.value()) {
        if (stats.feedback_items >= options.episode_size) break;
        // §3.2: the user judges the ANSWER; the verdict applies to every
        // link in its provenance.
        for (const linking::Link& link : answer.links_used) {
          if (!judged.insert(link).second) continue;
          bool approved = oracle.Feedback(link);
          engine->ApplyLinkFeedback(link, approved);
          ++stats.feedback_items;
          if (approved) {
            ++stats.positive_feedback;
          } else {
            ++stats.negative_feedback;
          }
        }
      }
    }
    fed::FederatedQueryCache::Stats cache_stats = cache.TakeStats();
    stats.query_cache_hits = cache_stats.hits;
    stats.query_cache_misses = cache_stats.misses;
    // The episode boundary: fires the observer above (updating links and
    // invalidating cache entries) and reports the net membership changes —
    // the symmetric difference with the episode start, not a count delta.
    size_t changed = engine->EndExternalEpisode();

    stats.candidate_count = engine->CandidateCount();
    stats.change_fraction =
        static_cast<double>(changed) /
        static_cast<double>(std::max<size_t>(1, previous_candidates));
    previous_candidates = stats.candidate_count;

    EpisodePoint point;
    point.episode = episode;
    point.stats = stats;
    point.quality = Evaluate(engine->CandidateLinks(), truth);
    result.series.push_back(point);
    ++result.episodes;
    if (result.relaxed_episode < 0 && stats.change_fraction < 0.05) {
      result.relaxed_episode = episode;
    }
    if (stats.feedback_items == 0 || stats.change_fraction == 0.0) {
      result.converged = stats.change_fraction == 0.0;
      break;
    }
  }
  engine->SetLinkChangeObserver(nullptr);
  result.total_seconds = run_timer.ElapsedSeconds();
  result.new_links_discovered =
      NewCorrectLinks(initial_links, engine->CandidateLinks(), truth);
  return result;
}

}  // namespace alex::eval
