#include "eval/query_workload.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/stopwatch.h"
#include "federation/federated_engine.h"
#include "federation/query_cache.h"
#include "rdf/entity_view.h"
#include "sparql/plan_cache.h"

namespace alex::eval {
namespace {

// Escapes a literal value for embedding in a SPARQL string.
std::string QuoteLiteral(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

}  // namespace

std::vector<WorkloadQuery> GenerateWorkload(
    const datagen::GeneratedWorld& world, const WorkloadOptions& options) {
  Rng rng(options.seed);
  std::vector<WorkloadQuery> queries;

  // Right-side predicates to project (vocabulary of the right store).
  std::vector<std::string> right_predicates;
  for (rdf::TermId p : world.right.Predicates()) {
    right_predicates.push_back(
        world.right.dictionary().term(p).lexical());
  }
  if (right_predicates.empty()) return queries;

  std::vector<rdf::TermId> left_subjects = world.left.Subjects();
  std::unordered_set<std::string> seen;
  size_t attempts = 0;
  while (queries.size() < options.num_queries &&
         attempts < options.num_queries * 10) {
    ++attempts;
    rdf::TermId subject =
        left_subjects[rng.NextBounded(left_subjects.size())];
    rdf::Entity entity = rdf::GetEntity(world.left, subject);
    if (entity.attributes.empty()) continue;
    const rdf::Attribute& attr =
        entity.attributes[rng.NextBounded(entity.attributes.size())];
    const rdf::Term& predicate =
        world.left.dictionary().term(attr.predicate);
    const rdf::Term& value = world.left.dictionary().term(attr.object);
    if (!value.is_literal()) continue;

    const std::string& right_predicate =
        right_predicates[rng.NextBounded(right_predicates.size())];
    WorkloadQuery query;
    query.about_left_entity =
        world.left.dictionary().term(subject).lexical();
    query.text = "SELECT ?val WHERE { ?e <" + predicate.lexical() + "> " +
                 QuoteLiteral(value.lexical()) + " . ?e <" +
                 right_predicate + "> ?val }";
    if (seen.insert(query.text).second) {
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

ExperimentResult RunQueryDrivenExperiment(
    core::AlexEngine* engine, const datagen::GeneratedWorld& world,
    const feedback::GroundTruth& truth, const QueryDrivenOptions& options) {
  ExperimentResult result;
  result.profile_name = "query_driven";
  result.ground_truth_size = truth.size();
  result.total_pairs = engine->total_pair_count();
  result.filtered_pairs = engine->filtered_pair_count();
  result.init_seconds = engine->init_seconds();

  std::vector<linking::Link> initial_links = engine->CandidateLinks();
  result.initial_link_count = initial_links.size();
  for (const linking::Link& link : initial_links) {
    if (truth.Contains(link)) ++result.initial_correct;
  }

  std::vector<WorkloadQuery> workload =
      GenerateWorkload(world, options.workload);
  feedback::Oracle oracle(&truth, options.feedback_error_rate,
                          options.oracle_seed);
  Rng rng(options.workload.seed ^ 0x5eedf00dULL);

  EpisodePoint start;
  start.episode = 0;
  start.quality = Evaluate(engine->CandidateLinks(), truth);
  result.series.push_back(start);

  // Persistent federation state. The link set is maintained incrementally:
  // the engine reports net candidate membership changes at every episode
  // boundary (EndExternalEpisode), so queries within an episode all see the
  // same links (the paper evaluates the policy within an episode and only
  // changes it between episodes) without re-materializing CandidateLinks().
  // The same deltas invalidate exactly the cached query results whose
  // consulted link neighborhoods changed.
  fed::LinkSet links;
  for (const linking::Link& link : initial_links) links.Add(link);
  fed::FederatedQueryCache cache;
  std::vector<const rdf::TripleStore*> sources = {&world.left, &world.right};
  // With a non-zero fault profile every source becomes an unreliable
  // endpoint and the engine runs its resilient path; a zero profile keeps
  // the seed construction (plain local stores), bit-for-bit.
  std::vector<std::unique_ptr<fed::LocalEndpoint>> local_endpoints;
  std::vector<std::unique_ptr<fed::FaultInjectingEndpoint>> faulty_endpoints;
  std::optional<fed::FederatedEngine> engine_storage;
  if (options.fault_profile.IsZero()) {
    engine_storage.emplace(sources, &links);
  } else {
    std::vector<fed::Endpoint*> endpoints;
    for (size_t i = 0; i < sources.size(); ++i) {
      local_endpoints.push_back(
          std::make_unique<fed::LocalEndpoint>(sources[i]));
      faulty_endpoints.push_back(
          std::make_unique<fed::FaultInjectingEndpoint>(
              local_endpoints.back().get(), i, options.fault_profile));
      endpoints.push_back(faulty_endpoints.back().get());
    }
    engine_storage.emplace(std::move(endpoints), &links);
    engine_storage->set_resilience(options.resilience);
  }
  fed::FederatedEngine& fed_engine = *engine_storage;
  if (options.use_query_cache) fed_engine.set_cache(&cache);
  sparql::PlanCache plan_cache;
  if (options.use_plan_cache) fed_engine.set_plan_cache(&plan_cache);
  fed::FederatedOptions fed_options;
  fed_options.pool = options.pool;
  fed_options.deadline_micros = options.deadline_micros;
  engine->SetLinkChangeObserver(
      [&links, &cache](const linking::Link& link, bool added) {
        if (added) {
          links.Add(link);
        } else {
          links.Remove(link.left, link.right);
        }
        cache.InvalidateLink(link);
      });

  Stopwatch run_timer;
  size_t previous_candidates = engine->CandidateCount();
  for (int episode = 1; episode <= options.max_episodes; ++episode) {
    core::EpisodeStats stats;
    stats.episode = episode;
    engine->BeginExternalEpisode();

    std::vector<size_t> order(workload.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(&order);

    // Each link is judged at most once per episode: different answers often
    // share the same provenance link, and re-judging it adds no
    // information (mirrors the engine's first-visit semantics).
    std::unordered_set<linking::Link, linking::LinkHash> judged;
    // Provenance links seen only through incomplete answer sets. They
    // receive no feedback (a degraded answer set can misrepresent a link's
    // effect); the count of those never judged elsewhere this episode is
    // reported as skipped_feedback.
    std::unordered_set<linking::Link, linking::LinkHash> skipped;
    for (size_t index : order) {
      if (stats.feedback_items >= options.episode_size) break;
      Result<fed::FederatedResult> executed =
          fed_engine.ExecuteText(workload[index].text, fed_options);
      if (!executed.ok()) continue;
      const fed::FederatedResult& result_set = executed.value();
      stats.query_probes += result_set.probes;
      stats.query_retries += result_set.retries;
      stats.breaker_short_circuits += result_set.short_circuits;
      if (!result_set.complete) {
        // Degraded evidence: an answer set with missing rows or sources
        // must not judge links. Positive verdicts could reward a link that
        // only looks good because contradicting rows are missing.
        ++stats.incomplete_queries;
        for (const fed::FederatedAnswer& answer : result_set.answers) {
          for (const linking::Link& link : answer.links_used) {
            skipped.insert(link);
          }
        }
        continue;
      }
      for (const fed::FederatedAnswer& answer : result_set.answers) {
        if (stats.feedback_items >= options.episode_size) break;
        // §3.2: the user judges the ANSWER; the verdict applies to every
        // link in its provenance.
        for (const linking::Link& link : answer.links_used) {
          if (!judged.insert(link).second) continue;
          bool approved = oracle.Feedback(link);
          engine->ApplyLinkFeedback(link, approved);
          ++stats.feedback_items;
          if (approved) {
            ++stats.positive_feedback;
          } else {
            ++stats.negative_feedback;
          }
        }
      }
    }
    for (const linking::Link& link : skipped) {
      if (judged.find(link) == judged.end()) ++stats.skipped_feedback;
    }
    fed::FederatedQueryCache::Stats cache_stats = cache.TakeStats();
    stats.query_cache_hits = cache_stats.hits;
    stats.query_cache_misses = cache_stats.misses;
    sparql::PlanCache::Stats plan_stats = plan_cache.TakeStats();
    stats.plan_cache_hits = plan_stats.parse_hits + plan_stats.plan_hits;
    stats.plan_cache_misses =
        plan_stats.parse_misses + plan_stats.plan_misses;
    fed::FederatedEngine::FaultStats fault_stats =
        fed_engine.TakeFaultStats();
    stats.breaker_opens = fault_stats.breaker_opens;
    stats.breaker_half_opens = fault_stats.breaker_half_opens;
    stats.breaker_closes = fault_stats.breaker_closes;
    // The episode boundary: fires the observer above (updating links and
    // invalidating cache entries) and reports the net membership changes —
    // the symmetric difference with the episode start, not a count delta.
    size_t changed = engine->EndExternalEpisode();

    stats.candidate_count = engine->CandidateCount();
    stats.change_fraction =
        static_cast<double>(changed) /
        static_cast<double>(std::max<size_t>(1, previous_candidates));
    previous_candidates = stats.candidate_count;

    EpisodePoint point;
    point.episode = episode;
    point.stats = stats;
    point.quality = Evaluate(engine->CandidateLinks(), truth);
    result.series.push_back(point);
    ++result.episodes;
    if (result.relaxed_episode < 0 && stats.change_fraction < 0.05) {
      result.relaxed_episode = episode;
    }
    if (stats.feedback_items == 0 || stats.change_fraction == 0.0) {
      result.converged = stats.change_fraction == 0.0;
      break;
    }
  }
  engine->SetLinkChangeObserver(nullptr);
  result.total_seconds = run_timer.ElapsedSeconds();
  result.new_links_discovered =
      NewCorrectLinks(initial_links, engine->CandidateLinks(), truth);
  return result;
}

}  // namespace alex::eval
