// The experiment driver: generate a data set pair from a profile, produce
// initial candidate links with PARIS, run ALEX against the feedback oracle,
// and record per-episode quality — the exact pipeline of §7.1.
#ifndef ALEX_EVAL_EXPERIMENT_H_
#define ALEX_EVAL_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/alex_engine.h"
#include "datagen/world.h"
#include "eval/metrics.h"
#include "feedback/oracle.h"
#include "linking/paris.h"

namespace alex::eval {

struct ExperimentConfig {
  datagen::WorldProfile profile;
  core::AlexOptions alex;
  linking::ParisOptions paris;
  // Links with PARIS score <= this are dropped (§7.1 uses 0.95).
  double paris_threshold = 0.95;
  // Fraction of incorrect feedback (Appendix C uses 0.1).
  double feedback_error_rate = 0.0;
  uint64_t oracle_seed = 99;
  // Optional pre-prepared right context for the engine (from
  // core::RightContext::Prepare with config.alex.space). Honored by
  // RunExperimentOnWorld only — RunExperiment generates its own world, so a
  // caller cannot have prepared its right side.
  std::shared_ptr<const core::RightContext> right_context;
};

// Quality of the candidate links after an episode. Episode 0 is the initial
// PARIS quality (the figures' leftmost point).
struct EpisodePoint {
  int episode = 0;
  Quality quality;
  core::EpisodeStats stats;  // zeroed for episode 0
};

struct ExperimentResult {
  std::string profile_name;
  size_t ground_truth_size = 0;
  size_t initial_link_count = 0;   // PARIS links above threshold
  size_t initial_correct = 0;      // of which correct
  size_t new_links_discovered = 0; // correct links ALEX added
  bool converged = false;
  int episodes = 0;
  int relaxed_episode = -1;  // first episode with <5% change, -1 if never
  double init_seconds = 0.0;     // pre-processing (feature spaces)
  double total_seconds = 0.0;    // episodes only
  uint64_t total_pairs = 0;      // raw cross product
  uint64_t filtered_pairs = 0;   // after θ-filtering
  std::vector<EpisodePoint> series;

  const Quality& final_quality() const { return series.back().quality; }
};

// Runs the full pipeline. `on_point` (optional) observes each episode point
// as it is produced (episode 0 included).
Result<ExperimentResult> RunExperiment(
    const ExperimentConfig& config,
    const std::function<void(const EpisodePoint&)>& on_point = nullptr);

// Variant that reuses an already-generated world and initial links (used by
// benches that compare several ALEX configurations on identical data).
Result<ExperimentResult> RunExperimentOnWorld(
    const ExperimentConfig& config, const datagen::GeneratedWorld& world,
    const std::vector<linking::Link>& initial_links,
    const std::function<void(const EpisodePoint&)>& on_point = nullptr);

}  // namespace alex::eval

#endif  // ALEX_EVAL_EXPERIMENT_H_
