// Link-quality metrics (paper §7.1): precision, recall, F-measure of the
// candidate link set against the ground truth.
#ifndef ALEX_EVAL_METRICS_H_
#define ALEX_EVAL_METRICS_H_

#include <vector>

#include "feedback/oracle.h"
#include "linking/link.h"

namespace alex::eval {

struct Quality {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  size_t candidates = 0;
  size_t correct = 0;  // |C ∩ G|
};

// P = |C∩G|/|C|, R = |C∩G|/|G|, F = 2PR/(P+R).
Quality Evaluate(const std::vector<linking::Link>& candidates,
                 const feedback::GroundTruth& truth);

// Number of links in `final_links ∩ G` that are not in `initial_links` —
// the "new links discovered by ALEX" counts the paper reports per
// experiment.
size_t NewCorrectLinks(const std::vector<linking::Link>& initial_links,
                       const std::vector<linking::Link>& final_links,
                       const feedback::GroundTruth& truth);

// Incremental quality evaluation: maintains |C| and |C ∩ G| as integer
// counters updated on every candidate-link add/remove, so per-episode
// quality is O(links changed this episode) instead of a full O(|C|) rescan.
// Snapshot() computes precision/recall/F with the same expressions as
// Evaluate, so a tracker fed every change since Reset is bitwise-equal to a
// full rescan (asserted by tests). Wire OnLinkChange into
// AlexEngine::SetLinkChangeObserver.
class QualityTracker {
 public:
  // `truth` must outlive the tracker.
  explicit QualityTracker(const feedback::GroundTruth* truth)
      : truth_(truth) {}

  // Resets the counters to the quality of `candidates`.
  void Reset(const std::vector<linking::Link>& candidates);

  // Records one net membership change: `added` is true when `link` entered
  // the candidate set, false when it left.
  void OnLinkChange(const linking::Link& link, bool added);

  Quality Snapshot() const;

  size_t candidates() const { return candidates_; }
  size_t correct() const { return correct_; }

 private:
  const feedback::GroundTruth* truth_;
  size_t candidates_ = 0;
  size_t correct_ = 0;
};

}  // namespace alex::eval

#endif  // ALEX_EVAL_METRICS_H_
