// Link-quality metrics (paper §7.1): precision, recall, F-measure of the
// candidate link set against the ground truth.
#ifndef ALEX_EVAL_METRICS_H_
#define ALEX_EVAL_METRICS_H_

#include <vector>

#include "feedback/oracle.h"
#include "linking/link.h"

namespace alex::eval {

struct Quality {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  size_t candidates = 0;
  size_t correct = 0;  // |C ∩ G|
};

// P = |C∩G|/|C|, R = |C∩G|/|G|, F = 2PR/(P+R).
Quality Evaluate(const std::vector<linking::Link>& candidates,
                 const feedback::GroundTruth& truth);

// Number of links in `final_links ∩ G` that are not in `initial_links` —
// the "new links discovered by ALEX" counts the paper reports per
// experiment.
size_t NewCorrectLinks(const std::vector<linking::Link>& initial_links,
                       const std::vector<linking::Link>& final_links,
                       const feedback::GroundTruth& truth);

}  // namespace alex::eval

#endif  // ALEX_EVAL_METRICS_H_
