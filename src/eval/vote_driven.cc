#include "eval/vote_driven.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "eval/metrics.h"

namespace alex::eval {
namespace {

// FNV-1a over a byte string, continuing from `h`.
uint64_t Fnv1a(const std::string& s, uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// SplitMix64 finalizer — turns a structured hash into uniform bits.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from (seed, link, k) — the same pure-hash
// construction as feedback::Oracle, so each user's flip is a function of
// WHAT is voted on, never of which thread cast it.
double HashToUnit(uint64_t seed, const linking::Link& link, uint64_t k) {
  uint64_t h = Fnv1a(link.left, 0xcbf29ce484222325ull);
  h ^= 0x01;
  h *= 0x100000001b3ull;
  h = Fnv1a(link.right, h);
  h = Mix(h ^ Mix(seed) ^ Mix(k * 0x632be59bd9b4e019ull + 1));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

ExperimentResult RunVoteDrivenExperiment(core::AlexEngine* engine,
                                         const feedback::GroundTruth& truth,
                                         const VoteDrivenOptions& options) {
  ExperimentResult result;
  result.profile_name = "vote_driven";
  result.ground_truth_size = truth.size();
  result.total_pairs = engine->total_pair_count();
  result.filtered_pairs = engine->filtered_pair_count();
  result.init_seconds = engine->init_seconds();

  std::vector<linking::Link> initial_links = engine->CandidateLinks();
  result.initial_link_count = initial_links.size();
  for (const linking::Link& link : initial_links) {
    if (truth.Contains(link)) ++result.initial_correct;
  }

  EpisodePoint start;
  start.episode = 0;
  start.quality = Evaluate(initial_links, truth);
  result.series.push_back(start);

  feedback::FeedbackAggregator aggregator(options.aggregator);
  const int users = std::max(1, options.users_per_link);
  const int vote_threads = std::max(1, options.vote_threads);

  Stopwatch run_timer;
  size_t previous_candidates = engine->CandidateCount();
  std::vector<linking::Link> drawn;
  for (int episode = 1; episode <= options.max_episodes; ++episode) {
    core::EpisodeStats stats;
    stats.episode = episode;
    engine->BeginExternalEpisode();

    // The episode's judgment sample, drawn single-threaded from the
    // engine's own RNG streams (prioritized or uniform per AlexOptions).
    drawn.clear();
    engine->SampleFeedbackLinks(options.links_per_episode, &drawn);

    // Expand to the per-user vote schedule. Vote v = draw d, user u; its
    // flip is a pure hash of (seed, link, d * users + u), so the multiset
    // of votes per link — all the aggregator's verdicts can depend on — is
    // fixed before any thread runs.
    auto cast_votes = [&](int thread_index) {
      const size_t total_votes = drawn.size() * static_cast<size_t>(users);
      for (size_t v = static_cast<size_t>(thread_index); v < total_votes;
           v += static_cast<size_t>(vote_threads)) {
        const linking::Link& link = drawn[v / static_cast<size_t>(users)];
        bool vote = truth.Contains(link);
        if (options.vote_error_rate > 0.0 &&
            HashToUnit(options.vote_seed, link, v) <
                options.vote_error_rate) {
          vote = !vote;
        }
        aggregator.AddVote(link, vote);
      }
    };
    if (vote_threads > 1) {
      std::vector<std::thread> writers;
      writers.reserve(static_cast<size_t>(vote_threads) - 1);
      for (int t = 1; t < vote_threads; ++t) {
        writers.emplace_back(cast_votes, t);
      }
      cast_votes(0);
      for (std::thread& w : writers) w.join();
    } else {
      cast_votes(0);
    }

    // One drained batch per epoch: verdicts arrive sorted by link, and the
    // whole batch is applied before the single EndExternalEpisode sync.
    for (const feedback::LinkVerdict& verdict :
         aggregator.DrainVerdicts(static_cast<uint64_t>(episode))) {
      engine->ApplyLinkFeedback(verdict.link, verdict.approve);
      ++stats.feedback_items;
      if (verdict.approve) {
        ++stats.positive_feedback;
      } else {
        ++stats.negative_feedback;
      }
    }
    const feedback::AggregatorStats agg = aggregator.stats();
    stats.votes_recorded = agg.votes_recorded;
    stats.verdicts_emitted = agg.verdicts_emitted;
    stats.aggregator_pending = agg.pending;
    stats.votes_suppressed = agg.votes_suppressed;
    stats.tallies_evicted = agg.tallies_evicted;

    size_t changed = engine->EndExternalEpisode();
    stats.candidate_count = engine->CandidateCount();
    stats.change_fraction =
        static_cast<double>(changed) /
        static_cast<double>(std::max<size_t>(1, previous_candidates));
    previous_candidates = stats.candidate_count;

    EpisodePoint point;
    point.episode = episode;
    point.stats = stats;
    point.quality = Evaluate(engine->CandidateLinks(), truth);
    result.series.push_back(std::move(point));
    ++result.episodes;
    if (result.relaxed_episode < 0 && stats.change_fraction < 0.05) {
      result.relaxed_episode = episode;
    }
    if (stats.change_fraction == 0.0) {
      result.converged = true;
      break;
    }
  }
  result.total_seconds = run_timer.ElapsedSeconds();
  result.new_links_discovered =
      NewCorrectLinks(initial_links, engine->CandidateLinks(), truth);
  return result;
}

}  // namespace alex::eval
