// The ingest-driven experiment: the stores GROW while ALEX learns.
//
// Each episode of the loop first applies one epoch of a deterministic
// datagen::GrowthSchedule to the two stores (new overlap entities on both
// sides plus their ground-truth links), folds the growth into the engine
// with AlexEngine::IngestTriples (incremental or rebuild, per
// AlexOptions::incremental_ingest), and then runs one ordinary feedback
// episode. Quality is evaluated against the growing ground truth, and the
// per-episode EpisodeStats carry the cumulative ingest counters
// (triples_ingested, entities_added, blocking_merges, space_overflow_pairs,
// ingest_epochs) into the usual CSV/summary reporting.
#ifndef ALEX_EVAL_INGEST_DRIVEN_H_
#define ALEX_EVAL_INGEST_DRIVEN_H_

#include <functional>

#include "common/status.h"
#include "datagen/world.h"
#include "eval/experiment.h"

namespace alex::eval {

struct IngestDrivenOptions {
  // New overlap entities per ingest epoch, as a fraction of the profile's
  // base overlap population (max(1, fraction * overlap_entities) entities).
  double growth_fraction = 0.01;
  // Ingest epochs to run; one feedback episode follows each. Overrides
  // config.alex.max_episodes for this loop.
  int epochs = 20;
  // Seed of the growth schedule (independent of the world profile's seed).
  uint64_t growth_seed = 7;
};

// Runs the grow-ingest-learn loop on a caller-owned world (mutated in
// place!) seeded with `initial_links`. The engine must own its right
// context, so config.right_context is ignored. `on_point` observes each
// episode point (episode 0, the pre-growth baseline, included).
Result<ExperimentResult> RunIngestDrivenExperiment(
    const ExperimentConfig& config, const IngestDrivenOptions& ingest,
    datagen::GeneratedWorld* world,
    const std::vector<linking::Link>& initial_links,
    const std::function<void(const EpisodePoint&)>& on_point = nullptr);

}  // namespace alex::eval

#endif  // ALEX_EVAL_INGEST_DRIVEN_H_
