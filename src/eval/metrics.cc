#include "eval/metrics.h"

#include <unordered_set>

namespace alex::eval {

Quality Evaluate(const std::vector<linking::Link>& candidates,
                 const feedback::GroundTruth& truth) {
  Quality q;
  q.candidates = candidates.size();
  for (const linking::Link& link : candidates) {
    if (truth.Contains(link)) ++q.correct;
  }
  if (q.candidates > 0) {
    q.precision = static_cast<double>(q.correct) /
                  static_cast<double>(q.candidates);
  }
  if (truth.size() > 0) {
    q.recall =
        static_cast<double>(q.correct) / static_cast<double>(truth.size());
  }
  if (q.precision + q.recall > 0.0) {
    q.f_measure =
        2.0 * q.precision * q.recall / (q.precision + q.recall);
  }
  return q;
}

void QualityTracker::Reset(const std::vector<linking::Link>& candidates) {
  candidates_ = candidates.size();
  correct_ = 0;
  for (const linking::Link& link : candidates) {
    if (truth_->Contains(link)) ++correct_;
  }
}

void QualityTracker::OnLinkChange(const linking::Link& link, bool added) {
  if (added) {
    ++candidates_;
    if (truth_->Contains(link)) ++correct_;
  } else {
    --candidates_;
    if (truth_->Contains(link)) --correct_;
  }
}

Quality QualityTracker::Snapshot() const {
  // Same expressions as Evaluate(), so the result is bitwise-equal to a
  // full rescan given the same counters.
  Quality q;
  q.candidates = candidates_;
  q.correct = correct_;
  if (q.candidates > 0) {
    q.precision = static_cast<double>(q.correct) /
                  static_cast<double>(q.candidates);
  }
  if (truth_->size() > 0) {
    q.recall =
        static_cast<double>(q.correct) / static_cast<double>(truth_->size());
  }
  if (q.precision + q.recall > 0.0) {
    q.f_measure =
        2.0 * q.precision * q.recall / (q.precision + q.recall);
  }
  return q;
}

size_t NewCorrectLinks(const std::vector<linking::Link>& initial_links,
                       const std::vector<linking::Link>& final_links,
                       const feedback::GroundTruth& truth) {
  std::unordered_set<linking::Link, linking::LinkHash> initial(
      initial_links.begin(), initial_links.end());
  size_t count = 0;
  for (const linking::Link& link : final_links) {
    if (truth.Contains(link) && initial.count(link) == 0) ++count;
  }
  return count;
}

}  // namespace alex::eval
