#include "eval/ingest_driven.h"

#include <utility>

#include "common/stopwatch.h"

namespace alex::eval {

Result<ExperimentResult> RunIngestDrivenExperiment(
    const ExperimentConfig& config, const IngestDrivenOptions& ingest,
    datagen::GeneratedWorld* world,
    const std::vector<linking::Link>& initial_links,
    const std::function<void(const EpisodePoint&)>& on_point) {
  ExperimentResult result;
  result.profile_name = config.profile.name;

  feedback::GroundTruth truth(world->ground_truth);
  result.initial_link_count = initial_links.size();
  for (const linking::Link& link : initial_links) {
    if (truth.Contains(link)) ++result.initial_correct;
  }

  core::AlexEngine engine(&world->left, &world->right, config.alex);
  // No prepared right context: IngestTriples mutates it, so the engine must
  // own it.
  ALEX_RETURN_IF_ERROR(engine.Initialize(initial_links));
  result.init_seconds = engine.init_seconds();

  // The growth schedule is a pure function of (profile, seed, fraction,
  // epochs) — the differential harness replays the same schedule against an
  // incremental and a rebuild engine and compares fingerprints.
  datagen::GrowthSchedule schedule =
      datagen::GrowWorld(config.profile, ingest.growth_seed,
                         ingest.growth_fraction, ingest.epochs);

  QualityTracker tracker(&truth);
  tracker.Reset(engine.CandidateLinks());
  engine.SetLinkChangeObserver(
      [&tracker](const linking::Link& link, bool added) {
        tracker.OnLinkChange(link, added);
      });

  EpisodePoint start;
  start.episode = 0;
  start.quality = tracker.Snapshot();
  result.series.push_back(start);
  if (on_point) on_point(start);

  feedback::Oracle oracle(&truth, config.feedback_error_rate,
                          config.oracle_seed);
  auto feedback_fn = [&oracle](const linking::Link& link) {
    return oracle.Feedback(link);
  };

  Stopwatch run_timer;
  for (const datagen::GrowthEpoch& epoch : schedule.epochs) {
    // Grow the stores, fold the growth into the engine, extend the truth —
    // all BEFORE the episode, so this episode's feedback already judges
    // links involving the new entities correctly.
    datagen::ApplyGrowthEpoch(epoch, &world->left, &world->right);
    core::AlexEngine::IngestStats ingest_stats;
    ALEX_RETURN_IF_ERROR(engine.IngestTriples(&ingest_stats));
    for (const linking::Link& link : epoch.new_ground_truth) {
      truth.Add(link);
      world->ground_truth.push_back(link);
    }

    core::EpisodeStats stats = engine.RunEpisode(feedback_fn);
    EpisodePoint point;
    point.episode = stats.episode;
    point.stats = stats;
    point.quality = tracker.Snapshot();
    result.series.push_back(point);
    if (on_point) on_point(point);
    ++result.episodes;
    if (result.relaxed_episode < 0 &&
        stats.change_fraction < config.alex.relaxed_change_fraction) {
      result.relaxed_episode = stats.episode;
    }
  }
  result.total_seconds = run_timer.ElapsedSeconds();
  result.ground_truth_size = truth.size();
  result.total_pairs = engine.total_pair_count();
  result.filtered_pairs = engine.filtered_pair_count();
  result.new_links_discovered =
      NewCorrectLinks(initial_links, engine.CandidateLinks(), truth);
  return result;
}

}  // namespace alex::eval
