#include "eval/experiment.h"

#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace alex::eval {

Result<ExperimentResult> RunExperiment(
    const ExperimentConfig& config,
    const std::function<void(const EpisodePoint&)>& on_point) {
  datagen::GeneratedWorld world = datagen::Generate(config.profile);
  std::vector<linking::Link> paris_links =
      linking::RunParis(world.left, world.right, config.paris);
  std::vector<linking::Link> initial = linking::FilterByScore(
      std::move(paris_links), config.paris_threshold);
  return RunExperimentOnWorld(config, world, initial, on_point);
}

Result<ExperimentResult> RunExperimentOnWorld(
    const ExperimentConfig& config, const datagen::GeneratedWorld& world,
    const std::vector<linking::Link>& initial_links,
    const std::function<void(const EpisodePoint&)>& on_point) {
  ExperimentResult result;
  result.profile_name = config.profile.name;

  feedback::GroundTruth truth(world.ground_truth);
  result.ground_truth_size = truth.size();
  result.initial_link_count = initial_links.size();
  for (const linking::Link& link : initial_links) {
    if (truth.Contains(link)) ++result.initial_correct;
  }

  core::AlexEngine engine(&world.left, &world.right, config.alex);
  ALEX_RETURN_IF_ERROR(engine.Initialize(initial_links,
                                         config.right_context));
  result.init_seconds = engine.init_seconds();
  result.total_pairs = engine.total_pair_count();
  result.filtered_pairs = engine.filtered_pair_count();

  // Incremental quality: the tracker is seeded with one full scan of the
  // initial candidates, then kept current by the engine's link-change
  // observer — per-episode quality is O(links changed), not O(|C|).
  QualityTracker tracker(&truth);
  tracker.Reset(engine.CandidateLinks());
  engine.SetLinkChangeObserver(
      [&tracker](const linking::Link& link, bool added) {
        tracker.OnLinkChange(link, added);
      });

  // Episode 0: quality of the initial candidate links.
  EpisodePoint start;
  start.episode = 0;
  start.quality = tracker.Snapshot();
  result.series.push_back(start);
  if (on_point) on_point(start);

  feedback::Oracle oracle(&truth, config.feedback_error_rate,
                          config.oracle_seed);
  auto feedback_fn = [&oracle](const linking::Link& link) {
    return oracle.Feedback(link);
  };

  Stopwatch run_timer;
  core::AlexEngine::RunResult run = engine.Run(
      feedback_fn, [&](const core::EpisodeStats& stats) {
        EpisodePoint point;
        point.episode = stats.episode;
        point.stats = stats;
        point.quality = tracker.Snapshot();
        result.series.push_back(point);
        if (on_point) on_point(point);
      });
  result.total_seconds = run_timer.ElapsedSeconds();
  result.converged = run.converged;
  result.episodes = run.episodes;
  result.relaxed_episode = run.relaxed_episode;
  result.new_links_discovered =
      NewCorrectLinks(initial_links, engine.CandidateLinks(), truth);
  return result;
}

}  // namespace alex::eval
