// Vote-driven feedback at provider scale (paper §6.3 + §7.2).
//
// The paper's batch mode assumes a service provider collecting feedback
// "from many users over a large number of links" and suggests refining it
// "so that ALEX uses only high quality feedback obtained from a large
// number of users". This driver closes that loop: instead of one oracle
// answer per drawn link (eval/experiment.h) or per query answer
// (eval/query_workload.h), every drawn link is judged by `users_per_link`
// simulated users whose individual votes are wrong with `vote_error_rate`
// probability. The votes stream into a sharded feedback::FeedbackAggregator
// from `vote_threads` concurrent writers; at the episode boundary one
// DrainVerdicts batch is applied to the engine through the external-episode
// machinery (ApplyLinkFeedback per verdict, then EndExternalEpisode /
// SyncSpaceToCandidates once), so space and cache invalidation is charged
// once per epoch — never per vote.
//
// Determinism: link draws come from the engine's own RNG streams
// (AlexEngine::SampleFeedbackLinks), each user's flip is a pure hash of
// (seed, link, draw, user), and the aggregator's verdict batch depends only
// on per-link vote multisets — so the full episode series is
// bitwise-identical at any vote_threads and any aggregator shard count
// (asserted by tests/eval/vote_driven_test.cc and bench_feedback).
#ifndef ALEX_EVAL_VOTE_DRIVEN_H_
#define ALEX_EVAL_VOTE_DRIVEN_H_

#include "core/alex_engine.h"
#include "eval/experiment.h"
#include "feedback/aggregator.h"
#include "feedback/oracle.h"

namespace alex::eval {

struct VoteDrivenOptions {
  // Distinct candidate links drawn for user judgment per episode
  // (prioritized when the engine's AlexOptions::prioritized_sampling is
  // on; capped at the live candidate count).
  size_t links_per_episode = 400;
  // Simulated users voting on each drawn link. The episode's vote budget
  // is links_per_episode * users_per_link.
  int users_per_link = 5;
  // Per-user probability of voting wrong (cf. Appendix C's 10% noise —
  // here per vote, to be outvoted by the quorum).
  double vote_error_rate = 0.1;
  uint64_t vote_seed = 777;
  int max_episodes = 30;
  // Concurrent vote-stream writers into the aggregator (votes are striped
  // across them). The series is identical at any count.
  int vote_threads = 1;
  feedback::AggregatorOptions aggregator;
};

// Runs the vote-driven pipeline on an initialized engine; `truth` is both
// the ground truth the users approximate and the quality yardstick.
// Aggregator counters land in each EpisodePoint's stats (votes_recorded,
// verdicts_emitted, aggregator_pending, votes_suppressed, tallies_evicted).
ExperimentResult RunVoteDrivenExperiment(core::AlexEngine* engine,
                                         const feedback::GroundTruth& truth,
                                         const VoteDrivenOptions& options);

}  // namespace alex::eval

#endif  // ALEX_EVAL_VOTE_DRIVEN_H_
