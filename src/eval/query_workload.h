// Query-driven feedback (the paper's actual §3.2 loop).
//
// The evaluation in §7 draws random candidate links and asks the oracle
// about them directly. In the deployed system, however, feedback arrives on
// the answers of *federated queries*: a user asks something that needs both
// data sets, the engine bridges them through candidate owl:sameAs links,
// and approving/rejecting an answer approves/rejects the links in its
// provenance. This module closes that loop end to end:
//
//   * GenerateWorkload builds federated SELECT queries over a generated
//     world, each shaped like the paper's §1 example: constrain an entity
//     by a left-side attribute value, ask for a right-side attribute —
//     answerable only across a link.
//   * RunQueryDrivenExperiment alternates episodes in which the queries are
//     executed against the current candidate links, every answer is judged
//     by the ground truth, and the feedback flows into the ALEX engine via
//     ApplyLinkFeedback.
//
// Query-driven feedback differs from uniform link sampling in coverage:
// only links that actually answer queries receive feedback. The
// `bench_query_driven` benchmark contrasts the two.
#ifndef ALEX_EVAL_QUERY_WORKLOAD_H_
#define ALEX_EVAL_QUERY_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/alex_engine.h"
#include "datagen/world.h"
#include "eval/experiment.h"
#include "federation/fault_injection.h"
#include "federation/federated_engine.h"
#include "feedback/oracle.h"

namespace alex::eval {

struct WorkloadOptions {
  // Number of distinct queries to generate.
  size_t num_queries = 300;
  uint64_t seed = 4242;
};

// One generated federated query (kept as text so tools can print/replay it).
struct WorkloadQuery {
  std::string text;
  // The left entity the query constrains (for diagnostics).
  std::string about_left_entity;
};

// Builds the workload from the world's left-side attribute values. Queries
// constrain a left predicate to an exact value and project a right-side
// predicate of the same (linked) entity.
std::vector<WorkloadQuery> GenerateWorkload(
    const datagen::GeneratedWorld& world, const WorkloadOptions& options);

struct QueryDrivenOptions {
  WorkloadOptions workload;
  // Feedback items per episode (an "episode" re-runs queries until this
  // many link-feedback items were produced or every query ran once).
  size_t episode_size = 1000;
  int max_episodes = 30;
  double feedback_error_rate = 0.0;
  uint64_t oracle_seed = 99;
  // Reuse federated query results across episodes through a
  // FederatedQueryCache invalidated exactly from the engine's epoch deltas.
  // The series is bitwise-identical with the cache on or off; the cache
  // only removes redundant re-execution.
  bool use_query_cache = true;
  // Reuse parsed queries across episodes through a sparql::PlanCache
  // attached to the federated engine. Parsing is deterministic, so the
  // series is bitwise-identical with this cache on or off too; per-episode
  // traffic lands in EpisodeStats::plan_cache_{hits,misses}.
  bool use_plan_cache = true;
  // Optional pool for per-source parallel federated evaluation (results
  // stay deterministic; see FederatedOptions::pool).
  ThreadPool* pool = nullptr;
  // Endpoint fault model. A zero profile (default) federates directly over
  // the stores — the seed behavior, bit-for-bit. A non-zero profile wraps
  // every source in a FaultInjectingEndpoint and runs the engine's
  // resilient path: queries whose answers come back incomplete produce NO
  // feedback (their provenance links are counted in
  // EpisodeStats::skipped_feedback instead), so the policy never trains on
  // degraded evidence. With a fixed profile seed the whole series is
  // bitwise-identical at any thread count.
  fed::FaultProfile fault_profile;
  // Retry/backoff and circuit-breaker configuration for the resilient path.
  fed::FederatedEngine::Resilience resilience;
  // Per-query virtual-time budget (see FederatedOptions::deadline_micros).
  int64_t deadline_micros = 0;
};

// Runs the full pipeline with query-driven feedback. The engine must
// already be initialized; `truth` judges answers. Returns the same series
// structure as RunExperimentOnWorld (episode 0 = initial quality).
// Installs its own link-change observer on the engine for the duration of
// the run (replacing any existing one; cleared before returning) to keep
// the federated link set and query cache synchronized with the candidate
// set incrementally.
ExperimentResult RunQueryDrivenExperiment(
    core::AlexEngine* engine, const datagen::GeneratedWorld& world,
    const feedback::GroundTruth& truth, const QueryDrivenOptions& options);

}  // namespace alex::eval

#endif  // ALEX_EVAL_QUERY_WORKLOAD_H_
