// Plain-text reporting helpers: the benchmark binaries print per-episode
// series in the same shape as the paper's figures (episode, precision,
// recall, F-measure, ...), plus summary lines for the counts the paper
// calls out in the text.
#ifndef ALEX_EVAL_REPORT_H_
#define ALEX_EVAL_REPORT_H_

#include <iosfwd>
#include <string>

#include "eval/experiment.h"

namespace alex::eval {

// Prints "episode precision recall f_measure neg_feedback% candidates" rows.
void PrintSeries(std::ostream& os, const std::string& title,
                 const ExperimentResult& result);

// Prints the summary block (ground truth size, new links discovered,
// convergence episodes, timings).
void PrintSummary(std::ostream& os, const ExperimentResult& result);

// One figure-style header line, e.g. "== Figure 2(a): DBpedia - NYTimes ==".
void PrintHeader(std::ostream& os, const std::string& title);

// Machine-readable per-episode series:
// episode,precision,recall,f_measure,neg_feedback_pct,candidates,seconds,
// incomplete_queries,skipped_feedback,query_retries,breaker_opens
void WriteSeriesCsv(std::ostream& os, const ExperimentResult& result);

// Writes the CSV to `path` (overwriting). Returns false on I/O failure.
bool SaveSeriesCsv(const std::string& path, const ExperimentResult& result);

}  // namespace alex::eval

#endif  // ALEX_EVAL_REPORT_H_
