// One immutable published epoch of the serving tier.
//
// An EpochSnapshot bundles everything a query needs to run against one
// consistent point of the learning timeline: the frozen link view published
// at an episode boundary, the per-epoch federated result cache (cloned from
// the parent epoch minus the entries the epoch delta invalidated), the
// SPARQL plan cache shared across epochs while statistics drift allows, the
// per-source DatasetStats the epoch was published under, and a
// FederatedEngine wired over all of them. Once constructed it never
// changes, so any number of reader threads execute against it without
// locks; the caches it holds are internally thread-safe.
//
// Lifetime IS the reclamation protocol: snapshots are held only through
// shared_ptr. The ServingEngine's atomic current-snapshot pointer holds one
// reference; every in-flight query pins another. Publishing a new epoch
// swaps the current pointer, after which the old snapshot drains — it is
// destroyed exactly when its last in-flight reader releases it, never
// earlier (no reader can observe a freed epoch) and never later (no
// grace-period delay). The destructor reports the retirement on the shared
// counter, which outlives both the snapshot and, if need be, the engine.
#ifndef ALEX_SERVING_EPOCH_SNAPSHOT_H_
#define ALEX_SERVING_EPOCH_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "federation/federated_engine.h"
#include "federation/link_set.h"
#include "federation/query_cache.h"
#include "rdf/dataset_stats.h"
#include "rdf/triple_store.h"
#include "sparql/plan_cache.h"

namespace alex::serving {

class EpochSnapshot {
 public:
  struct Components {
    uint64_t epoch = 0;
    // The frozen link view (StagedLinkSet::Publish output). Required.
    std::shared_ptr<const fed::LinkView> links;
    // Per-epoch result cache; may be null (caching off).
    std::shared_ptr<fed::FederatedQueryCache> cache;
    // Plan cache, typically SHARED with other epochs; may be null.
    std::shared_ptr<sparql::PlanCache> plan_cache;
    // Immutable stores; must outlive every snapshot over them.
    std::vector<const rdf::TripleStore*> sources;
    // Statistics the epoch was published under (one per source).
    std::vector<rdf::DatasetStats> stats;
    // Bumped once by the destructor; may be null.
    std::shared_ptr<std::atomic<uint64_t>> retired_counter;
  };

  explicit EpochSnapshot(Components components);
  ~EpochSnapshot();

  EpochSnapshot(const EpochSnapshot&) = delete;
  EpochSnapshot& operator=(const EpochSnapshot&) = delete;

  // Executes a federated SELECT against this epoch. Safe to call
  // concurrently from any number of threads; results are bitwise-identical
  // to a sequential replay against the same snapshot.
  Result<fed::FederatedResult> ExecuteText(
      const std::string& query_text,
      const fed::FederatedOptions& options = {}) const;

  uint64_t epoch() const { return components_.epoch; }
  const fed::LinkView& links() const { return *components_.links; }
  fed::FederatedQueryCache* cache() const { return components_.cache.get(); }
  sparql::PlanCache* plan_cache() const {
    return components_.plan_cache.get();
  }
  const std::vector<rdf::DatasetStats>& stats() const {
    return components_.stats;
  }
  const fed::FederatedEngine& engine() const { return engine_; }

 private:
  Components components_;
  fed::FederatedEngine engine_;  // wired over components_ at construction
};

}  // namespace alex::serving

#endif  // ALEX_SERVING_EPOCH_SNAPSHOT_H_
