// Snapshot-isolated concurrent serving over a live-learning link set.
//
// The serving tier separates the two halves of a deployed ALEX instance:
//
//   * The LEARNER (single publisher thread) runs feedback episodes and
//     stages the resulting link changes into a copy-on-write delta
//     (StagedLinkSet). Nothing a reader can see changes while it stages.
//   * READERS (any number of query streams) execute federated queries
//     against the current EpochSnapshot, pinned per query by one
//     spin-guarded shared_ptr copy (see EpochPivot) — no blocking locks
//     on the read hot path.
//
// Publish() freezes the staged delta into a new immutable EpochSnapshot —
// links view, result cache carried forward from the parent epoch minus the
// delta-invalidated entries, plan cache shared across epochs while dataset
// statistics drift stays under the threshold — and swaps it in with an
// RCU-style atomic store. Queries that pinned the old epoch keep running
// against it unperturbed; the old snapshot is reclaimed when its last
// reader drains (shared_ptr refcount = per-epoch reader count, so
// reclamation is exact: never while a reader is in flight, immediately
// after the last one leaves).
//
// Determinism: a query's answers depend only on the pinned snapshot, and a
// snapshot never changes after publication, so every answer set is
// bitwise-identical to a sequential replay against the same epoch — at any
// thread count, regardless of how executions interleave with publishes.
// The learner side is untouched by readers (they share no mutable state
// beyond thread-safe caches whose hits return byte-identical results), so
// the episode series is the same with serving on or off.
#ifndef ALEX_SERVING_SERVING_ENGINE_H_
#define ALEX_SERVING_SERVING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/latency_histogram.h"
#include "common/status.h"
#include "federation/federated_engine.h"
#include "rdf/dataset_stats.h"
#include "rdf/triple_store.h"
#include "serving/epoch_snapshot.h"
#include "serving/staged_link_set.h"
#include "sparql/plan_cache.h"

namespace alex::serving {

struct ServingOptions {
  // Immutable stores to federate over; must outlive the engine and every
  // snapshot it publishes.
  std::vector<const rdf::TripleStore*> sources;
  // Carry federated results across queries and epochs (exact epoch-delta
  // invalidation at publish time).
  bool use_query_cache = true;
  // Share one parse/plan cache across epochs.
  bool use_plan_cache = true;
  // StagedLinkSet compaction threshold (delta/base fraction).
  double merge_fraction = 0.25;
  // NoteFreshStats replaces the shared plan cache when any source's
  // statistics drifted past this fraction since the cache was built.
  double plan_drift_threshold = 0.2;
};

// The epoch pivot: a shared_ptr readers copy and the publisher swaps,
// guarded by a one-word spinlock with acquire/release ordering. This is
// the same discipline libstdc++'s std::atomic<std::shared_ptr> uses
// internally (its lock bit on the refcount word — that implementation is
// not lock-free either), except the ordering here is TSan-visible: GCC
// 12's _Sp_atomic::load releases its lock bit with memory_order_relaxed,
// which ThreadSanitizer reports as a race against the publisher's swap.
// The critical section is a pointer copy plus one refcount increment — a
// handful of instructions, never blocking on I/O or allocation.
class EpochPivot {
 public:
  std::shared_ptr<const EpochSnapshot> Load() const {
    Lock();
    std::shared_ptr<const EpochSnapshot> copy = ptr_;
    Unlock();
    return copy;
  }

  void Store(std::shared_ptr<const EpochSnapshot> next) {
    Lock();
    ptr_.swap(next);
    Unlock();
    // `next` (the previous epoch) releases here, outside the critical
    // section — retirement destructors never run under the pivot lock.
  }

 private:
  void Lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void Unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<const EpochSnapshot> ptr_;
};

// Thread-safety: StageLink/Publish/NoteFreshStats from ONE publisher thread;
// Pin/ExecuteText/stats from any thread concurrently with them.
class ServingEngine {
 public:
  // Publishes epoch 0 containing `initial_links`.
  ServingEngine(ServingOptions options,
                std::span<const linking::Link> initial_links);

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  // -- Learner (publisher) side --------------------------------------------

  // Stages a candidate-link membership change for the NEXT epoch. Readers
  // keep seeing the current epoch until Publish.
  void StageLink(const linking::Link& link, bool added);

  // Freezes the staged delta into a new EpochSnapshot and makes it current.
  // Returns the published snapshot (the caller may retain it, e.g. for
  // replay verification; retaining defers its retirement).
  std::shared_ptr<const EpochSnapshot> Publish();

  // Presents fresh per-source statistics (same order as sources). When any
  // source drifted past plan_drift_threshold relative to the statistics the
  // shared plan cache was built under, the NEXT publish starts a fresh plan
  // cache — epochs already published keep the one they hold. Returns true
  // when the cache was marked for replacement.
  bool NoteFreshStats(std::span<const rdf::DatasetStats> fresh);

  // Announces that the source stores were mutated in place by a triple
  // ingest (new triples, new entities). Epoch-delta invalidation is unsound
  // under ingest — new triples add answers to queries whose consulted set
  // never mentioned them — so the NEXT publish starts a cold federated
  // query cache instead of carrying the parent's forward. The fresh
  // statistics also feed the plan-drift check (NoteFreshStats), and the
  // published snapshot's stats reflect the post-ingest stores. Snapshots
  // already published are NOT safe to read concurrently with the ingest
  // itself: quiesce in-flight readers of epochs that pinned the mutated
  // stores before mutating, then call this and Publish. (Pinned snapshots
  // remain valid for link-set reads; only federated execution touches the
  // stores.)
  bool NoteSourceIngest(std::span<const rdf::DatasetStats> fresh);

  // -- Reader side ---------------------------------------------------------

  // Pins the current epoch: one spin-guarded shared_ptr copy. The snapshot
  // stays valid (and immutable) for as long as the returned pointer is
  // held, no matter how many epochs are published meanwhile.
  std::shared_ptr<const EpochSnapshot> Pin() const;

  // Pins the current epoch and executes against it, recording serving
  // latency and concurrent-reader accounting. When `pinned` is non-null it
  // receives the snapshot the query actually ran against (for replay
  // verification — the caller cannot learn it from a separate Pin(), which
  // could race a publish).
  Result<fed::FederatedResult> ExecuteText(
      const std::string& query_text, const fed::FederatedOptions& options = {},
      std::shared_ptr<const EpochSnapshot>* pinned = nullptr);

  struct Stats {
    uint64_t epochs_published = 0;
    // Snapshots whose last reference drained (destroyed). The current
    // snapshot and any caller-retained ones are alive, so this lags
    // epochs_published by at least one.
    uint64_t snapshots_retired = 0;
    // High-water mark of simultaneous ExecuteText calls.
    uint64_t max_concurrent_readers = 0;
    uint64_t queries_served = 0;
    // StagedLinkSet compactions (base rematerializations) so far.
    uint64_t link_merges = 0;
    uint64_t current_epoch = 0;
  };
  Stats stats() const;

  // Serving-side query latency (ExecuteText only), mergeable and readable
  // while streams are live.
  const LatencyHistogram& latency() const { return latency_; }

 private:
  std::shared_ptr<const EpochSnapshot> Freeze();

  ServingOptions options_;
  std::vector<rdf::DatasetStats> source_stats_;  // stats at construction
  StagedLinkSet staged_;
  std::shared_ptr<sparql::PlanCache> plan_cache_;    // shared across epochs
  std::vector<rdf::DatasetStats> plan_cache_stats_;  // stats it was built on
  bool replace_plan_cache_ = false;
  // Set by NoteSourceIngest; the next Freeze starts a cold query cache
  // (delta invalidation cannot see answers ADDED by new triples).
  bool flush_query_cache_ = false;
  uint64_t next_epoch_ = 0;
  // The RCU pivot: readers load, the publisher stores. Retired snapshots
  // report on retired_ (shared so a snapshot outliving the engine still has
  // somewhere to report).
  EpochPivot current_;
  std::shared_ptr<std::atomic<uint64_t>> retired_;
  std::atomic<uint64_t> epochs_published_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> active_readers_{0};
  std::atomic<uint64_t> max_readers_{0};
  // Mirror of staged_.merges(), updated at publish time so stats() can read
  // it from any thread (staged_ itself is publisher-only).
  std::atomic<uint64_t> link_merges_{0};
  LatencyHistogram latency_;
};

}  // namespace alex::serving

#endif  // ALEX_SERVING_SERVING_ENGINE_H_
