#include "serving/serving_engine.h"

#include <utility>

#include "common/stopwatch.h"

namespace alex::serving {

ServingEngine::ServingEngine(ServingOptions options,
                             std::span<const linking::Link> initial_links)
    : options_(std::move(options)),
      retired_(std::make_shared<std::atomic<uint64_t>>(0)) {
  source_stats_.reserve(options_.sources.size());
  for (const rdf::TripleStore* source : options_.sources) {
    source_stats_.push_back(rdf::ComputeStats(*source));
  }
  if (options_.use_plan_cache) {
    plan_cache_ =
        std::make_shared<sparql::PlanCache>(options_.plan_drift_threshold);
    plan_cache_stats_ = source_stats_;
  }
  for (const linking::Link& link : initial_links) StageLink(link, true);
  Publish();
}

void ServingEngine::StageLink(const linking::Link& link, bool added) {
  staged_.Stage(link, added);
}

std::shared_ptr<const EpochSnapshot> ServingEngine::Freeze() {
  EpochSnapshot::Components parts;
  parts.epoch = next_epoch_++;
  parts.sources = options_.sources;
  parts.stats = source_stats_;
  parts.retired_counter = retired_;

  // Order matters: take the per-epoch delta before Publish clears it.
  std::vector<linking::Link> delta = staged_.TakeEpochDelta();
  parts.links = staged_.Publish(options_.merge_fraction);

  if (options_.use_query_cache) {
    std::shared_ptr<const EpochSnapshot> parent = current_.Load();
    if (flush_query_cache_) {
      // A source ingest invalidated results wholesale: new triples add
      // answers to queries that never consulted the new IRIs, so the
      // consulted-set delta subtraction cannot identify the stale entries.
      // Start cold; steady-state epochs repopulate it.
      parts.cache = std::make_shared<fed::FederatedQueryCache>();
      flush_query_cache_ = false;
    } else if (parent != nullptr && parent->cache() != nullptr) {
      // Carry the parent epoch's still-exact results forward: clone minus
      // the entries the staged delta invalidates.
      parts.cache =
          std::make_shared<fed::FederatedQueryCache>(*parent->cache(), delta);
    } else {
      parts.cache = std::make_shared<fed::FederatedQueryCache>();
    }
  }
  if (options_.use_plan_cache) {
    if (replace_plan_cache_) {
      plan_cache_ =
          std::make_shared<sparql::PlanCache>(options_.plan_drift_threshold);
      plan_cache_stats_ = source_stats_;
      replace_plan_cache_ = false;
    }
    parts.plan_cache = plan_cache_;
  }
  return std::make_shared<const EpochSnapshot>(std::move(parts));
}

std::shared_ptr<const EpochSnapshot> ServingEngine::Publish() {
  std::shared_ptr<const EpochSnapshot> snapshot = Freeze();
  // The RCU swap: readers that already pinned the old epoch keep it alive
  // through their own reference; new pins see the new epoch. The old
  // snapshot retires when its last reference (pin or caller-retained)
  // drops.
  current_.Store(snapshot);
  epochs_published_.fetch_add(1, std::memory_order_relaxed);
  link_merges_.store(staged_.merges(), std::memory_order_relaxed);
  return snapshot;
}

bool ServingEngine::NoteFreshStats(std::span<const rdf::DatasetStats> fresh) {
  source_stats_.assign(fresh.begin(), fresh.end());
  if (!options_.use_plan_cache || replace_plan_cache_) {
    return replace_plan_cache_;
  }
  for (size_t i = 0; i < fresh.size() && i < plan_cache_stats_.size(); ++i) {
    if (rdf::Drift(plan_cache_stats_[i], fresh[i]) >
        options_.plan_drift_threshold) {
      replace_plan_cache_ = true;
      return true;
    }
  }
  return false;
}

bool ServingEngine::NoteSourceIngest(
    std::span<const rdf::DatasetStats> fresh) {
  flush_query_cache_ = true;
  return NoteFreshStats(fresh);
}

std::shared_ptr<const EpochSnapshot> ServingEngine::Pin() const {
  return current_.Load();
}

Result<fed::FederatedResult> ServingEngine::ExecuteText(
    const std::string& query_text, const fed::FederatedOptions& options,
    std::shared_ptr<const EpochSnapshot>* pinned_out) {
  const uint64_t readers =
      active_readers_.fetch_add(1, std::memory_order_acq_rel) + 1;
  uint64_t seen_max = max_readers_.load(std::memory_order_relaxed);
  while (readers > seen_max && !max_readers_.compare_exchange_weak(
                                   seen_max, readers,
                                   std::memory_order_relaxed)) {
  }
  Stopwatch timer;
  std::shared_ptr<const EpochSnapshot> pinned = Pin();
  Result<fed::FederatedResult> result =
      pinned->ExecuteText(query_text, options);
  latency_.Record(static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  active_readers_.fetch_sub(1, std::memory_order_acq_rel);
  if (pinned_out != nullptr) *pinned_out = std::move(pinned);
  return result;
}

ServingEngine::Stats ServingEngine::stats() const {
  Stats out;
  out.epochs_published = epochs_published_.load(std::memory_order_relaxed);
  out.snapshots_retired = retired_->load(std::memory_order_relaxed);
  out.max_concurrent_readers = max_readers_.load(std::memory_order_relaxed);
  out.queries_served = queries_served_.load(std::memory_order_relaxed);
  out.link_merges = link_merges_.load(std::memory_order_relaxed);
  std::shared_ptr<const EpochSnapshot> pinned = Pin();
  out.current_epoch = pinned == nullptr ? 0 : pinned->epoch();
  return out;
}

}  // namespace alex::serving
