#include "serving/epoch_snapshot.h"

#include <utility>

namespace alex::serving {

EpochSnapshot::EpochSnapshot(Components components)
    : components_(std::move(components)),
      engine_(components_.sources, components_.links.get()) {
  if (components_.cache != nullptr) engine_.set_cache(components_.cache.get());
  if (components_.plan_cache != nullptr) {
    engine_.set_plan_cache(components_.plan_cache.get());
  }
}

EpochSnapshot::~EpochSnapshot() {
  if (components_.retired_counter != nullptr) {
    components_.retired_counter->fetch_add(1, std::memory_order_relaxed);
  }
}

Result<fed::FederatedResult> EpochSnapshot::ExecuteText(
    const std::string& query_text, const fed::FederatedOptions& options) const {
  return engine_.ExecuteText(query_text, options);
}

}  // namespace alex::serving
