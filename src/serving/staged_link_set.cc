#include "serving/staged_link_set.h"

#include <algorithm>
#include <utility>

namespace alex::serving {
namespace {

// Inserts `value` into the sorted vector `*list` (kept unique).
void SortedInsert(std::vector<std::string>* list, const std::string& value) {
  auto it = std::lower_bound(list->begin(), list->end(), value);
  if (it != list->end() && *it == value) return;
  list->insert(it, value);
}

}  // namespace

DeltaLinkView::DeltaLinkView(std::shared_ptr<const fed::LinkSet> base,
                             const std::vector<linking::Link>& added,
                             const std::vector<linking::Link>& removed)
    : base_(std::move(base)),
      added_count_(added.size()),
      removed_count_(removed.size()) {
  for (const linking::Link& link : added) {
    SortedInsert(&added_by_left_[link.left], link.right);
    SortedInsert(&added_by_right_[link.right], link.left);
  }
  for (const linking::Link& link : removed) {
    SortedInsert(&removed_by_left_[link.left], link.right);
    SortedInsert(&removed_by_right_[link.right], link.left);
  }
}

bool DeltaLinkView::Contains(const std::string& left,
                             const std::string& right) const {
  auto tomb = removed_by_left_.find(left);
  if (tomb != removed_by_left_.end() &&
      std::binary_search(tomb->second.begin(), tomb->second.end(), right)) {
    return false;
  }
  auto add = added_by_left_.find(left);
  if (add != added_by_left_.end() &&
      std::binary_search(add->second.begin(), add->second.end(), right)) {
    return true;
  }
  return base_->Contains(left, right);
}

namespace {

// base minus removed plus added, all inputs sorted, output sorted — the
// exact list a materialized LinkSet would return.
std::vector<std::string> OverlayNeighbors(
    std::vector<std::string> base, const std::vector<std::string>* removed,
    const std::vector<std::string>* added) {
  if (removed != nullptr) {
    std::vector<std::string> kept;
    kept.reserve(base.size());
    std::set_difference(base.begin(), base.end(), removed->begin(),
                        removed->end(), std::back_inserter(kept));
    base = std::move(kept);
  }
  if (added != nullptr) {
    std::vector<std::string> merged;
    merged.reserve(base.size() + added->size());
    std::set_union(base.begin(), base.end(), added->begin(), added->end(),
                   std::back_inserter(merged));
    base = std::move(merged);
  }
  return base;
}

const std::vector<std::string>* FindOrNull(
    const std::unordered_map<std::string, std::vector<std::string>>& index,
    const std::string& key) {
  auto it = index.find(key);
  return it == index.end() ? nullptr : &it->second;
}

}  // namespace

std::vector<std::string> DeltaLinkView::RightsOf(
    const std::string& left) const {
  return OverlayNeighbors(base_->RightsOf(left),
                          FindOrNull(removed_by_left_, left),
                          FindOrNull(added_by_left_, left));
}

std::vector<std::string> DeltaLinkView::LeftsOf(
    const std::string& right) const {
  return OverlayNeighbors(base_->LeftsOf(right),
                          FindOrNull(removed_by_right_, right),
                          FindOrNull(added_by_right_, right));
}

StagedLinkSet::StagedLinkSet()
    : base_(std::make_shared<const fed::LinkSet>()) {}

void StagedLinkSet::Stage(const linking::Link& link, bool added) {
  epoch_delta_.insert(link);
  if (added) {
    if (base_->Contains(link.left, link.right)) {
      removed_.erase(link);  // un-remove
    } else {
      // Re-staging the same pair refreshes the score (Link equality ignores
      // it), mirroring LinkSet::Add.
      auto [it, inserted] = added_.insert(link);
      if (!inserted && link.score > it->score) {
        added_.erase(it);
        added_.insert(link);
      }
    }
  } else {
    if (base_->Contains(link.left, link.right)) {
      removed_.insert(link);
    } else {
      added_.erase(link);
    }
  }
}

std::shared_ptr<const fed::LinkView> StagedLinkSet::Publish(
    double merge_fraction) {
  epoch_delta_.clear();
  const size_t delta = added_.size() + removed_.size();
  const size_t threshold = static_cast<size_t>(
      merge_fraction * static_cast<double>(std::max<size_t>(1, base_->size())));
  if (delta > threshold) {
    // Compaction: rematerialize the base so overlay depth stays at one.
    auto merged = std::make_shared<fed::LinkSet>();
    for (const linking::Link& link : base_->All()) {
      if (removed_.find(link) == removed_.end()) merged->Add(link);
    }
    for (const linking::Link& link : added_) merged->Add(link);
    base_ = std::move(merged);
    added_.clear();
    removed_.clear();
    ++merges_;
    return base_;
  }
  std::vector<linking::Link> added(added_.begin(), added_.end());
  std::vector<linking::Link> removed(removed_.begin(), removed_.end());
  return std::make_shared<const DeltaLinkView>(base_, added, removed);
}

std::vector<linking::Link> StagedLinkSet::TakeEpochDelta() {
  std::vector<linking::Link> out(epoch_delta_.begin(), epoch_delta_.end());
  epoch_delta_.clear();
  std::sort(out.begin(), out.end());
  return out;
}

size_t StagedLinkSet::size() const {
  return base_->size() - removed_.size() + added_.size();
}

}  // namespace alex::serving
