// The serving experiment: concurrent query streams over a live learner.
//
// RunServingExperiment reproduces eval::RunQueryDrivenExperiment's
// feedback loop — same workload, same shuffle RNG, same oracle, same
// episode boundaries — but routes all federation state through the serving
// tier: the learner stages its per-episode link changes and publishes an
// EpochSnapshot at every boundary, while `num_streams` reader threads
// continuously execute the workload against whatever epoch each query pins.
//
// Properties this construction guarantees (and tests/bench assert):
//
//   * The learner's episode series (quality, feedback and candidate counts)
//     is bitwise-identical to the plain query-driven run: the learner
//     executes against the snapshot it just published — which holds exactly
//     the links the mutable LinkSet would hold — and readers share nothing
//     mutable with it beyond thread-safe caches whose hits are
//     byte-identical to re-execution.
//   * Epoch pinning: a stream query that pinned epoch E observes E's links
//     even if the learner publishes E+1..E+k mid-flight.
//   * Every recorded stream answer set is bitwise-identical to a sequential
//     replay against the same epoch's retained snapshot (the identity gate:
//     hashes of the full row sets compare equal).
#ifndef ALEX_SERVING_SERVING_LOOP_H_
#define ALEX_SERVING_SERVING_LOOP_H_

#include <cstdint>
#include <vector>

#include "core/alex_engine.h"
#include "datagen/world.h"
#include "eval/experiment.h"
#include "eval/query_workload.h"
#include "feedback/aggregator.h"
#include "feedback/oracle.h"
#include "serving/serving_engine.h"

namespace alex::serving {

struct ServingLoopOptions {
  eval::WorkloadOptions workload;
  size_t episode_size = 1000;
  int max_episodes = 30;
  double feedback_error_rate = 0.0;
  uint64_t oracle_seed = 99;
  bool use_query_cache = true;
  bool use_plan_cache = true;
  double merge_fraction = 0.25;
  // Concurrent reader streams executing the workload against the serving
  // engine while the learner runs. 0 = learner only (no reader threads).
  size_t num_streams = 0;
  // Stop recording per-stream results after this many per stream (bounds
  // replay memory); streams keep serving unrecorded after the cap.
  size_t max_stream_records = 4096;
  // Retain every published snapshot and, after the streams drain, re-execute
  // each recorded stream query sequentially against its pinned epoch,
  // comparing answer hashes. Costs memory (snapshots survive the run) and
  // replay time.
  bool verify_identity = true;
  // Crowd votes riding on serving traffic. 0 = off (the default, which is
  // what the series-identity guarantee above assumes). When > 0, every
  // reader stream casts this many noisy votes per link in each answer's
  // provenance into a shared sharded FeedbackAggregator, and the learner
  // drains ONE verdict batch per episode boundary — applied through
  // ApplyLinkFeedback before the publish — so feedback volume scales with
  // how much traffic the streams actually served. The learner series then
  // intentionally depends on stream timing; epoch-pinned answer identity
  // still holds and is still verified.
  int votes_per_answer_link = 0;
  double vote_error_rate = 0.1;
  uint64_t vote_seed = 777;
  feedback::AggregatorOptions aggregator;
};

struct ServingRunResult {
  // The learner series, in the same shape as the plain query-driven run.
  eval::ExperimentResult experiment;
  ServingEngine::Stats serving;
  // Reader-stream traffic.
  size_t stream_queries = 0;
  uint64_t stream_rows = 0;
  // Identity gate: recorded stream queries replayed against their pinned
  // epoch, and how many replays hashed identically. verified == replayed
  // iff snapshot isolation held. Both 0 when verify_identity was off or
  // num_streams == 0.
  size_t identity_replayed = 0;
  size_t identity_verified = 0;
  // Crowd-vote pipeline (votes_per_answer_link > 0): total votes the reader
  // streams cast, and how many drained verdicts the learner applied.
  size_t stream_votes = 0;
  size_t crowd_verdicts = 0;
  // Serving-side latency (stream ExecuteText calls), milliseconds.
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  double latency_mean_ms = 0.0;

  bool identity_ok() const { return identity_verified == identity_replayed; }
};

// Deterministic 64-bit digest of a federated answer set, order-sensitive:
// equal iff the rows (variable bindings, in result order) are identical.
uint64_t HashAnswers(const std::vector<fed::FederatedAnswer>& answers);

// Runs the serving experiment. `engine` must be initialized; installs its
// own link-change observer for the duration (replacing any existing one).
ServingRunResult RunServingExperiment(core::AlexEngine* engine,
                                      const datagen::GeneratedWorld& world,
                                      const feedback::GroundTruth& truth,
                                      const ServingLoopOptions& options);

}  // namespace alex::serving

#endif  // ALEX_SERVING_SERVING_LOOP_H_
