// Copy-on-write staging of link-set changes between serving epochs.
//
// The learner mutates candidate links at every episode boundary, but
// in-flight queries must keep seeing the epoch they started on. A
// StagedLinkSet separates the two: the learner stages adds/removes into a
// delta while readers execute against immutable published views; Publish()
// freezes the accumulated delta into a new immutable LinkView without
// copying the (much larger) base link set.
//
// Publication is O(delta): the frozen DeltaLinkView overlays sorted
// add/tombstone indexes on a shared immutable base LinkSet. Implementations
// of LinkView must return sorted neighbor lists, and the overlay merges
// sorted streams, so a DeltaLinkView answers every LinkView call with
// byte-identical results to a LinkSet materialized from the same links —
// queries cannot observe which representation served them (asserted by
// tests/serving). When the accumulated delta outgrows
// `merge_fraction` of the base, Publish materializes a fresh base instead
// (the RDF-3X differential-index compaction step), so overlay depth stays
// at one and read amplification is bounded.
//
// Thread-safety: staging and Publish happen on one publisher thread;
// published views are immutable and safe to read from any thread.
#ifndef ALEX_SERVING_STAGED_LINK_SET_H_
#define ALEX_SERVING_STAGED_LINK_SET_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "federation/link_set.h"
#include "linking/link.h"

namespace alex::serving {

// Immutable overlay of (adds, tombstones) on a shared base LinkSet.
class DeltaLinkView : public fed::LinkView {
 public:
  DeltaLinkView(std::shared_ptr<const fed::LinkSet> base,
                const std::vector<linking::Link>& added,
                const std::vector<linking::Link>& removed);

  bool Contains(const std::string& left,
                const std::string& right) const override;
  std::vector<std::string> RightsOf(const std::string& left) const override;
  std::vector<std::string> LeftsOf(const std::string& right) const override;

  size_t added_count() const { return added_count_; }
  size_t removed_count() const { return removed_count_; }

 private:
  using NeighborIndex =
      std::unordered_map<std::string, std::vector<std::string>>;

  std::shared_ptr<const fed::LinkSet> base_;
  // Sorted neighbor lists of the staged adds / tombstoned removes, indexed
  // from both sides (mirrors LinkSet's by_left_/by_right_).
  NeighborIndex added_by_left_;
  NeighborIndex added_by_right_;
  NeighborIndex removed_by_left_;
  NeighborIndex removed_by_right_;
  size_t added_count_ = 0;
  size_t removed_count_ = 0;
};

class StagedLinkSet {
 public:
  // Starts empty; stage the initial links and Publish for the epoch-0 view.
  StagedLinkSet();

  // Stages a membership change relative to the last published view. Staging
  // add-then-remove of the same pair cancels out.
  void Stage(const linking::Link& link, bool added);

  // Freezes the state into an immutable view. When the accumulated delta
  // (relative to the current base) exceeds `merge_fraction` of the base
  // size, the base is rematerialized first — publication then costs
  // O(base + delta) once instead of per-read overlay merging forever.
  // Returns the new view; previously returned views stay valid and
  // unchanged (readers pin them).
  std::shared_ptr<const fed::LinkView> Publish(double merge_fraction = 0.25);

  // The links staged since the previous Publish (each IRI pair at most
  // once), in ascending (left, right) order. Cleared by Publish; call
  // before it to drive exact per-epoch cache invalidation.
  std::vector<linking::Link> TakeEpochDelta();

  // Current logical size (base minus tombstones plus adds).
  size_t size() const;
  size_t pending_adds() const { return added_.size(); }
  size_t pending_removes() const { return removed_.size(); }
  // Times Publish chose to rematerialize the base (compaction events).
  size_t merges() const { return merges_; }

 private:
  // Base published content; shared with every live DeltaLinkView.
  std::shared_ptr<const fed::LinkSet> base_;
  // Accumulated delta relative to base_: links present that base lacks, and
  // links absent that base has. Disjoint by construction.
  std::unordered_set<linking::Link, linking::LinkHash> added_;
  std::unordered_set<linking::Link, linking::LinkHash> removed_;
  // Links staged since the last Publish (for per-epoch cache invalidation).
  std::unordered_set<linking::Link, linking::LinkHash> epoch_delta_;
  size_t merges_ = 0;
};

}  // namespace alex::serving

#endif  // ALEX_SERVING_STAGED_LINK_SET_H_
