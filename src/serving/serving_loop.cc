#include "serving/serving_loop.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"

namespace alex::serving {
namespace {

void MixBytes(uint64_t* hash, const std::string& bytes) {
  for (unsigned char c : bytes) {
    *hash ^= c;
    *hash *= 1099511628211ull;
  }
  // Separator so concatenation ambiguity cannot collide fields.
  *hash ^= 0xff;
  *hash *= 1099511628211ull;
}

// SplitMix64 finalizer — turns a structured hash into uniform bits.
uint64_t MixWord(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from (seed, link, k) — the pure-hash vote-flip
// construction shared with eval::RunVoteDrivenExperiment: each vote's error
// is a function of what is voted on, never of which stream cast it.
double VoteUnit(uint64_t seed, const linking::Link& link, uint64_t k) {
  uint64_t h = 1469598103934665603ull;
  MixBytes(&h, link.left);
  MixBytes(&h, link.right);
  h = MixWord(h ^ MixWord(seed) ^ MixWord(k * 0x632be59bd9b4e019ull + 1));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// One stream query observation, enough to replay it exactly.
struct StreamRecord {
  size_t query_index = 0;
  uint64_t epoch = 0;
  uint64_t answers_hash = 0;
  size_t rows = 0;
};

}  // namespace

uint64_t HashAnswers(const std::vector<fed::FederatedAnswer>& answers) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a
  for (const fed::FederatedAnswer& answer : answers) {
    for (const auto& [var, term] : answer.binding) {  // std::map: sorted
      MixBytes(&hash, var);
      MixBytes(&hash, term.lexical());
    }
    for (const linking::Link& link : answer.links_used) {
      MixBytes(&hash, link.left);
      MixBytes(&hash, link.right);
    }
    hash ^= 0xfe;
    hash *= 1099511628211ull;
  }
  return hash;
}

ServingRunResult RunServingExperiment(core::AlexEngine* engine,
                                      const datagen::GeneratedWorld& world,
                                      const feedback::GroundTruth& truth,
                                      const ServingLoopOptions& options) {
  ServingRunResult out;
  eval::ExperimentResult& result = out.experiment;
  result.profile_name = "serving";
  result.ground_truth_size = truth.size();
  result.total_pairs = engine->total_pair_count();
  result.filtered_pairs = engine->filtered_pair_count();
  result.init_seconds = engine->init_seconds();

  std::vector<linking::Link> initial_links = engine->CandidateLinks();
  result.initial_link_count = initial_links.size();
  for (const linking::Link& link : initial_links) {
    if (truth.Contains(link)) ++result.initial_correct;
  }

  std::vector<eval::WorkloadQuery> workload =
      eval::GenerateWorkload(world, options.workload);
  feedback::Oracle oracle(&truth, options.feedback_error_rate,
                          options.oracle_seed);
  // Same stream as the plain query-driven loop, so the two runs shuffle the
  // workload identically — a precondition for series identity.
  Rng rng(options.workload.seed ^ 0x5eedf00dULL);

  eval::EpisodePoint start;
  start.episode = 0;
  start.quality = eval::Evaluate(initial_links, truth);
  result.series.push_back(start);

  // Warm the store indexes before any concurrent reads (index build is
  // lazy and not thread-safe on first touch).
  for (const rdf::TripleStore* source :
       {&world.left, &world.right}) {
    (void)source->size();
  }

  ServingOptions serving_options;
  serving_options.sources = {&world.left, &world.right};
  serving_options.use_query_cache = options.use_query_cache;
  serving_options.use_plan_cache = options.use_plan_cache;
  serving_options.merge_fraction = options.merge_fraction;
  ServingEngine serving(serving_options, initial_links);  // publishes epoch 0

  // Epoch retention for the identity replay.
  std::unordered_map<uint64_t, std::shared_ptr<const EpochSnapshot>> retained;
  std::shared_ptr<const EpochSnapshot> current = serving.Pin();
  if (options.verify_identity) retained[current->epoch()] = current;

  // The learner stages every net candidate change; the next Publish turns
  // them into the next epoch (and invalidates exactly those cache entries).
  engine->SetLinkChangeObserver(
      [&serving](const linking::Link& link, bool added) {
        serving.StageLink(link, added);
      });

  // -- Crowd votes riding on stream traffic --------------------------------
  // Opt-in: every answer a stream serves yields votes_per_answer_link noisy
  // votes per provenance link, funneled into the sharded aggregator. The
  // learner drains one verdict batch per episode boundary below.
  const int votes_per_link = std::max(0, options.votes_per_answer_link);
  std::unique_ptr<feedback::FeedbackAggregator> aggregator;
  if (votes_per_link > 0 && options.num_streams > 0) {
    aggregator =
        std::make_unique<feedback::FeedbackAggregator>(options.aggregator);
  }

  // -- Reader streams ------------------------------------------------------
  std::atomic<bool> stop{false};
  std::vector<std::vector<StreamRecord>> stream_records(options.num_streams);
  std::unique_ptr<ThreadPool> streams;
  if (options.num_streams > 0) {
    streams =
        std::make_unique<ThreadPool>(static_cast<int>(options.num_streams));
    for (size_t s = 0; s < options.num_streams; ++s) {
      streams->Schedule([&, s] {
        Rng stream_rng(options.workload.seed ^ (0xabcdull + 31 * s));
        std::vector<size_t> order(workload.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::vector<StreamRecord>& records = stream_records[s];
        // Distinct per-stream vote index space, so two streams voting on
        // the same link are two different (possibly disagreeing) users.
        uint64_t vote_index = s << 40;
        while (!stop.load(std::memory_order_acquire)) {
          stream_rng.Shuffle(&order);
          for (size_t index : order) {
            if (stop.load(std::memory_order_acquire)) break;
            std::shared_ptr<const EpochSnapshot> pinned;
            Result<fed::FederatedResult> executed =
                serving.ExecuteText(workload[index].text, {}, &pinned);
            if (!executed.ok()) continue;
            if (records.size() < options.max_stream_records) {
              StreamRecord record;
              record.query_index = index;
              record.epoch = pinned->epoch();
              record.answers_hash = HashAnswers(executed.value().answers);
              record.rows = executed.value().answers.size();
              records.push_back(record);
            }
            if (aggregator != nullptr) {
              for (const fed::FederatedAnswer& answer :
                   executed.value().answers) {
                for (const linking::Link& link : answer.links_used) {
                  for (int v = 0; v < votes_per_link; ++v) {
                    bool vote = truth.Contains(link);
                    if (options.vote_error_rate > 0.0 &&
                        VoteUnit(options.vote_seed, link, vote_index) <
                            options.vote_error_rate) {
                      vote = !vote;
                    }
                    ++vote_index;
                    aggregator->AddVote(link, vote);
                  }
                }
              }
            }
          }
        }
      });
    }
  }

  // -- The learner (publisher) loop ---------------------------------------
  Stopwatch run_timer;
  size_t previous_candidates = engine->CandidateCount();
  for (int episode = 1; episode <= options.max_episodes; ++episode) {
    core::EpisodeStats stats;
    stats.episode = episode;
    engine->BeginExternalEpisode();

    std::vector<size_t> order(workload.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(&order);

    // The learner executes against the snapshot it last published — the
    // exact link content the mutable LinkSet would hold at this point — on
    // this thread, sequentially: the episode series cannot depend on what
    // the reader streams are doing.
    std::unordered_set<linking::Link, linking::LinkHash> judged;
    for (size_t index : order) {
      if (stats.feedback_items >= options.episode_size) break;
      Result<fed::FederatedResult> executed =
          current->ExecuteText(workload[index].text);
      if (!executed.ok()) continue;
      const fed::FederatedResult& result_set = executed.value();
      if (!result_set.complete) {
        ++stats.incomplete_queries;
        continue;
      }
      for (const fed::FederatedAnswer& answer : result_set.answers) {
        if (stats.feedback_items >= options.episode_size) break;
        // §3.2: the verdict on an answer applies to every link in its
        // provenance; each link is judged at most once per episode.
        for (const linking::Link& link : answer.links_used) {
          if (!judged.insert(link).second) continue;
          bool approved = oracle.Feedback(link);
          engine->ApplyLinkFeedback(link, approved);
          ++stats.feedback_items;
          if (approved) {
            ++stats.positive_feedback;
          } else {
            ++stats.negative_feedback;
          }
        }
      }
    }

    // Per-epoch cache traffic. Under concurrent streams these counters
    // include stream hits/misses too — they are traffic accounting, not
    // part of the deterministic series.
    if (current->cache() != nullptr) {
      fed::FederatedQueryCache::Stats cache_stats =
          current->cache()->TakeStats();
      stats.query_cache_hits = cache_stats.hits;
      stats.query_cache_misses = cache_stats.misses;
    }
    if (current->plan_cache() != nullptr) {
      sparql::PlanCache::Stats plan_stats = current->plan_cache()->TakeStats();
      stats.plan_cache_hits = plan_stats.parse_hits + plan_stats.plan_hits;
      stats.plan_cache_misses =
          plan_stats.parse_misses + plan_stats.plan_misses;
    }

    // Crowd verdicts: one drained batch per epoch, applied before the
    // boundary sync so the votes the streams cast during this episode land
    // in the epoch about to publish. Quorums the crowd has not reached yet
    // stay pending in the aggregator for the next boundary.
    if (aggregator != nullptr) {
      for (const feedback::LinkVerdict& verdict :
           aggregator->DrainVerdicts(static_cast<uint64_t>(episode))) {
        engine->ApplyLinkFeedback(verdict.link, verdict.approve);
        ++stats.feedback_items;
        if (verdict.approve) {
          ++stats.positive_feedback;
        } else {
          ++stats.negative_feedback;
        }
        ++out.crowd_verdicts;
      }
      feedback::AggregatorStats agg = aggregator->stats();
      stats.votes_recorded = agg.votes_recorded;
      stats.verdicts_emitted = agg.verdicts_emitted;
      stats.aggregator_pending = agg.pending;
      stats.votes_suppressed = agg.votes_suppressed;
      stats.tallies_evicted = agg.tallies_evicted;
    }

    // The episode boundary: fires the observer (staging the net membership
    // changes) and reports their count; Publish then freezes them into the
    // next epoch while in-flight stream queries keep their pinned epochs.
    size_t changed = engine->EndExternalEpisode();
    current = serving.Publish();
    if (options.verify_identity) retained[current->epoch()] = current;

    ServingEngine::Stats serving_stats = serving.stats();
    stats.epochs_published = serving_stats.epochs_published;
    stats.snapshots_retired = serving_stats.snapshots_retired;
    stats.max_concurrent_readers = serving_stats.max_concurrent_readers;

    stats.candidate_count = engine->CandidateCount();
    stats.change_fraction =
        static_cast<double>(changed) /
        static_cast<double>(std::max<size_t>(1, previous_candidates));
    previous_candidates = stats.candidate_count;

    eval::EpisodePoint point;
    point.episode = episode;
    point.stats = stats;
    point.quality = eval::Evaluate(engine->CandidateLinks(), truth);
    result.series.push_back(point);
    ++result.episodes;
    if (result.relaxed_episode < 0 && stats.change_fraction < 0.05) {
      result.relaxed_episode = episode;
    }
    if (stats.feedback_items == 0 || stats.change_fraction == 0.0) {
      result.converged = stats.change_fraction == 0.0;
      break;
    }
  }
  engine->SetLinkChangeObserver(nullptr);

  stop.store(true, std::memory_order_release);
  if (streams != nullptr) streams->Wait();
  if (aggregator != nullptr) {
    out.stream_votes = aggregator->stats().votes_recorded;
  }
  result.total_seconds = run_timer.ElapsedSeconds();
  result.new_links_discovered =
      eval::NewCorrectLinks(initial_links, engine->CandidateLinks(), truth);

  // -- Identity gate: sequential replay at the pinned epochs ---------------
  for (const std::vector<StreamRecord>& records : stream_records) {
    out.stream_queries += records.size();
    for (const StreamRecord& record : records) {
      out.stream_rows += record.rows;
      if (!options.verify_identity) continue;
      auto it = retained.find(record.epoch);
      if (it == retained.end()) continue;  // cannot happen: epochs retained
      ++out.identity_replayed;
      Result<fed::FederatedResult> replayed =
          it->second->ExecuteText(workload[record.query_index].text);
      if (replayed.ok() &&
          HashAnswers(replayed.value().answers) == record.answers_hash) {
        ++out.identity_verified;
      }
    }
  }

  out.serving = serving.stats();
  const LatencyHistogram& latency = serving.latency();
  out.latency_p50_ms = latency.PercentileMicros(0.50) / 1000.0;
  out.latency_p90_ms = latency.PercentileMicros(0.90) / 1000.0;
  out.latency_p99_ms = latency.PercentileMicros(0.99) / 1000.0;
  out.latency_max_ms = static_cast<double>(latency.max_micros()) / 1000.0;
  out.latency_mean_ms = latency.MeanMicros() / 1000.0;
  return out;
}

}  // namespace alex::serving
