# Empty compiler generated dependencies file for sparql_query.
# This may be replaced when dependencies are built.
