file(REMOVE_RECURSE
  "CMakeFiles/sparql_query.dir/sparql_query.cc.o"
  "CMakeFiles/sparql_query.dir/sparql_query.cc.o.d"
  "sparql_query"
  "sparql_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
