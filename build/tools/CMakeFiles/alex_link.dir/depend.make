# Empty dependencies file for alex_link.
# This may be replaced when dependencies are built.
