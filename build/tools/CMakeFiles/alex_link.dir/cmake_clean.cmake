file(REMOVE_RECURSE
  "CMakeFiles/alex_link.dir/alex_link.cc.o"
  "CMakeFiles/alex_link.dir/alex_link.cc.o.d"
  "alex_link"
  "alex_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
