# Empty dependencies file for bench_fig10_step_size.
# This may be replaced when dependencies are built.
