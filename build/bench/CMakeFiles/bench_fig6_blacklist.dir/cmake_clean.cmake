file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_blacklist.dir/bench_fig6_blacklist.cc.o"
  "CMakeFiles/bench_fig6_blacklist.dir/bench_fig6_blacklist.cc.o.d"
  "bench_fig6_blacklist"
  "bench_fig6_blacklist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_blacklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
