# Empty compiler generated dependencies file for bench_fig6_blacklist.
# This may be replaced when dependencies are built.
