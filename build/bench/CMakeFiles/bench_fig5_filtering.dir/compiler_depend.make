# Empty compiler generated dependencies file for bench_fig5_filtering.
# This may be replaced when dependencies are built.
