# Empty dependencies file for bench_fig3_batch_opencyc.
# This may be replaced when dependencies are built.
