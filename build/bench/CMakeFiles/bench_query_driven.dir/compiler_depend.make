# Empty compiler generated dependencies file for bench_query_driven.
# This may be replaced when dependencies are built.
