file(REMOVE_RECURSE
  "CMakeFiles/bench_query_driven.dir/bench_query_driven.cc.o"
  "CMakeFiles/bench_query_driven.dir/bench_query_driven.cc.o.d"
  "bench_query_driven"
  "bench_query_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
