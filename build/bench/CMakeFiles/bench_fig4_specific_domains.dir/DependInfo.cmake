
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_specific_domains.cc" "bench/CMakeFiles/bench_fig4_specific_domains.dir/bench_fig4_specific_domains.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_specific_domains.dir/bench_fig4_specific_domains.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alex_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
