file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_multidomain.dir/bench_fig8_multidomain.cc.o"
  "CMakeFiles/bench_fig8_multidomain.dir/bench_fig8_multidomain.cc.o.d"
  "bench_fig8_multidomain"
  "bench_fig8_multidomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_multidomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
