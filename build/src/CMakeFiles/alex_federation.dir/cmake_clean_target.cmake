file(REMOVE_RECURSE
  "libalex_federation.a"
)
