
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/federation/federated_engine.cc" "src/CMakeFiles/alex_federation.dir/federation/federated_engine.cc.o" "gcc" "src/CMakeFiles/alex_federation.dir/federation/federated_engine.cc.o.d"
  "/root/repo/src/federation/link_set.cc" "src/CMakeFiles/alex_federation.dir/federation/link_set.cc.o" "gcc" "src/CMakeFiles/alex_federation.dir/federation/link_set.cc.o.d"
  "/root/repo/src/federation/source_selection.cc" "src/CMakeFiles/alex_federation.dir/federation/source_selection.cc.o" "gcc" "src/CMakeFiles/alex_federation.dir/federation/source_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alex_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
