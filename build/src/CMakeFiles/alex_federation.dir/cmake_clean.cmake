file(REMOVE_RECURSE
  "CMakeFiles/alex_federation.dir/federation/federated_engine.cc.o"
  "CMakeFiles/alex_federation.dir/federation/federated_engine.cc.o.d"
  "CMakeFiles/alex_federation.dir/federation/link_set.cc.o"
  "CMakeFiles/alex_federation.dir/federation/link_set.cc.o.d"
  "CMakeFiles/alex_federation.dir/federation/source_selection.cc.o"
  "CMakeFiles/alex_federation.dir/federation/source_selection.cc.o.d"
  "libalex_federation.a"
  "libalex_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
