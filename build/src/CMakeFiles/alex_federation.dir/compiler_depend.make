# Empty compiler generated dependencies file for alex_federation.
# This may be replaced when dependencies are built.
