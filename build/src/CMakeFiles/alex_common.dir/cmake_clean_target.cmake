file(REMOVE_RECURSE
  "libalex_common.a"
)
