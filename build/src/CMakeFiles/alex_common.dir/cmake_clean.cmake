file(REMOVE_RECURSE
  "CMakeFiles/alex_common.dir/common/logging.cc.o"
  "CMakeFiles/alex_common.dir/common/logging.cc.o.d"
  "CMakeFiles/alex_common.dir/common/rng.cc.o"
  "CMakeFiles/alex_common.dir/common/rng.cc.o.d"
  "CMakeFiles/alex_common.dir/common/status.cc.o"
  "CMakeFiles/alex_common.dir/common/status.cc.o.d"
  "CMakeFiles/alex_common.dir/common/strings.cc.o"
  "CMakeFiles/alex_common.dir/common/strings.cc.o.d"
  "CMakeFiles/alex_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/alex_common.dir/common/thread_pool.cc.o.d"
  "libalex_common.a"
  "libalex_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
