
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/similarity/string_metrics.cc" "src/CMakeFiles/alex_similarity.dir/similarity/string_metrics.cc.o" "gcc" "src/CMakeFiles/alex_similarity.dir/similarity/string_metrics.cc.o.d"
  "/root/repo/src/similarity/value_similarity.cc" "src/CMakeFiles/alex_similarity.dir/similarity/value_similarity.cc.o" "gcc" "src/CMakeFiles/alex_similarity.dir/similarity/value_similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
