file(REMOVE_RECURSE
  "libalex_core.a"
)
