
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alex_engine.cc" "src/CMakeFiles/alex_core.dir/core/alex_engine.cc.o" "gcc" "src/CMakeFiles/alex_core.dir/core/alex_engine.cc.o.d"
  "/root/repo/src/core/candidate_set.cc" "src/CMakeFiles/alex_core.dir/core/candidate_set.cc.o" "gcc" "src/CMakeFiles/alex_core.dir/core/candidate_set.cc.o.d"
  "/root/repo/src/core/engine_state.cc" "src/CMakeFiles/alex_core.dir/core/engine_state.cc.o" "gcc" "src/CMakeFiles/alex_core.dir/core/engine_state.cc.o.d"
  "/root/repo/src/core/feature_set.cc" "src/CMakeFiles/alex_core.dir/core/feature_set.cc.o" "gcc" "src/CMakeFiles/alex_core.dir/core/feature_set.cc.o.d"
  "/root/repo/src/core/feature_space.cc" "src/CMakeFiles/alex_core.dir/core/feature_space.cc.o" "gcc" "src/CMakeFiles/alex_core.dir/core/feature_space.cc.o.d"
  "/root/repo/src/core/mc_learner.cc" "src/CMakeFiles/alex_core.dir/core/mc_learner.cc.o" "gcc" "src/CMakeFiles/alex_core.dir/core/mc_learner.cc.o.d"
  "/root/repo/src/core/partitioner.cc" "src/CMakeFiles/alex_core.dir/core/partitioner.cc.o" "gcc" "src/CMakeFiles/alex_core.dir/core/partitioner.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/CMakeFiles/alex_core.dir/core/policy.cc.o" "gcc" "src/CMakeFiles/alex_core.dir/core/policy.cc.o.d"
  "/root/repo/src/core/rollback_log.cc" "src/CMakeFiles/alex_core.dir/core/rollback_log.cc.o" "gcc" "src/CMakeFiles/alex_core.dir/core/rollback_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alex_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
