# Empty compiler generated dependencies file for alex_core.
# This may be replaced when dependencies are built.
