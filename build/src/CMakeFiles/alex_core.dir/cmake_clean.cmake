file(REMOVE_RECURSE
  "CMakeFiles/alex_core.dir/core/alex_engine.cc.o"
  "CMakeFiles/alex_core.dir/core/alex_engine.cc.o.d"
  "CMakeFiles/alex_core.dir/core/candidate_set.cc.o"
  "CMakeFiles/alex_core.dir/core/candidate_set.cc.o.d"
  "CMakeFiles/alex_core.dir/core/engine_state.cc.o"
  "CMakeFiles/alex_core.dir/core/engine_state.cc.o.d"
  "CMakeFiles/alex_core.dir/core/feature_set.cc.o"
  "CMakeFiles/alex_core.dir/core/feature_set.cc.o.d"
  "CMakeFiles/alex_core.dir/core/feature_space.cc.o"
  "CMakeFiles/alex_core.dir/core/feature_space.cc.o.d"
  "CMakeFiles/alex_core.dir/core/mc_learner.cc.o"
  "CMakeFiles/alex_core.dir/core/mc_learner.cc.o.d"
  "CMakeFiles/alex_core.dir/core/partitioner.cc.o"
  "CMakeFiles/alex_core.dir/core/partitioner.cc.o.d"
  "CMakeFiles/alex_core.dir/core/policy.cc.o"
  "CMakeFiles/alex_core.dir/core/policy.cc.o.d"
  "CMakeFiles/alex_core.dir/core/rollback_log.cc.o"
  "CMakeFiles/alex_core.dir/core/rollback_log.cc.o.d"
  "libalex_core.a"
  "libalex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
