
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/dataset_stats.cc" "src/CMakeFiles/alex_rdf.dir/rdf/dataset_stats.cc.o" "gcc" "src/CMakeFiles/alex_rdf.dir/rdf/dataset_stats.cc.o.d"
  "/root/repo/src/rdf/dictionary.cc" "src/CMakeFiles/alex_rdf.dir/rdf/dictionary.cc.o" "gcc" "src/CMakeFiles/alex_rdf.dir/rdf/dictionary.cc.o.d"
  "/root/repo/src/rdf/entity_view.cc" "src/CMakeFiles/alex_rdf.dir/rdf/entity_view.cc.o" "gcc" "src/CMakeFiles/alex_rdf.dir/rdf/entity_view.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/CMakeFiles/alex_rdf.dir/rdf/ntriples.cc.o" "gcc" "src/CMakeFiles/alex_rdf.dir/rdf/ntriples.cc.o.d"
  "/root/repo/src/rdf/snapshot.cc" "src/CMakeFiles/alex_rdf.dir/rdf/snapshot.cc.o" "gcc" "src/CMakeFiles/alex_rdf.dir/rdf/snapshot.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/CMakeFiles/alex_rdf.dir/rdf/term.cc.o" "gcc" "src/CMakeFiles/alex_rdf.dir/rdf/term.cc.o.d"
  "/root/repo/src/rdf/triple_store.cc" "src/CMakeFiles/alex_rdf.dir/rdf/triple_store.cc.o" "gcc" "src/CMakeFiles/alex_rdf.dir/rdf/triple_store.cc.o.d"
  "/root/repo/src/rdf/turtle.cc" "src/CMakeFiles/alex_rdf.dir/rdf/turtle.cc.o" "gcc" "src/CMakeFiles/alex_rdf.dir/rdf/turtle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
