file(REMOVE_RECURSE
  "libalex_rdf.a"
)
