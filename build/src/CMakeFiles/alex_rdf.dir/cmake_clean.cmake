file(REMOVE_RECURSE
  "CMakeFiles/alex_rdf.dir/rdf/dataset_stats.cc.o"
  "CMakeFiles/alex_rdf.dir/rdf/dataset_stats.cc.o.d"
  "CMakeFiles/alex_rdf.dir/rdf/dictionary.cc.o"
  "CMakeFiles/alex_rdf.dir/rdf/dictionary.cc.o.d"
  "CMakeFiles/alex_rdf.dir/rdf/entity_view.cc.o"
  "CMakeFiles/alex_rdf.dir/rdf/entity_view.cc.o.d"
  "CMakeFiles/alex_rdf.dir/rdf/ntriples.cc.o"
  "CMakeFiles/alex_rdf.dir/rdf/ntriples.cc.o.d"
  "CMakeFiles/alex_rdf.dir/rdf/snapshot.cc.o"
  "CMakeFiles/alex_rdf.dir/rdf/snapshot.cc.o.d"
  "CMakeFiles/alex_rdf.dir/rdf/term.cc.o"
  "CMakeFiles/alex_rdf.dir/rdf/term.cc.o.d"
  "CMakeFiles/alex_rdf.dir/rdf/triple_store.cc.o"
  "CMakeFiles/alex_rdf.dir/rdf/triple_store.cc.o.d"
  "CMakeFiles/alex_rdf.dir/rdf/turtle.cc.o"
  "CMakeFiles/alex_rdf.dir/rdf/turtle.cc.o.d"
  "libalex_rdf.a"
  "libalex_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
