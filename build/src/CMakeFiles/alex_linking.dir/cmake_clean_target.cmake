file(REMOVE_RECURSE
  "libalex_linking.a"
)
