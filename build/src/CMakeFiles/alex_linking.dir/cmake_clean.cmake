file(REMOVE_RECURSE
  "CMakeFiles/alex_linking.dir/linking/link.cc.o"
  "CMakeFiles/alex_linking.dir/linking/link.cc.o.d"
  "CMakeFiles/alex_linking.dir/linking/link_io.cc.o"
  "CMakeFiles/alex_linking.dir/linking/link_io.cc.o.d"
  "CMakeFiles/alex_linking.dir/linking/paris.cc.o"
  "CMakeFiles/alex_linking.dir/linking/paris.cc.o.d"
  "CMakeFiles/alex_linking.dir/linking/rule_matcher.cc.o"
  "CMakeFiles/alex_linking.dir/linking/rule_matcher.cc.o.d"
  "libalex_linking.a"
  "libalex_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
