# Empty compiler generated dependencies file for alex_linking.
# This may be replaced when dependencies are built.
