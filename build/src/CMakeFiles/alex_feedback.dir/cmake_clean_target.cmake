file(REMOVE_RECURSE
  "libalex_feedback.a"
)
