file(REMOVE_RECURSE
  "CMakeFiles/alex_feedback.dir/feedback/aggregator.cc.o"
  "CMakeFiles/alex_feedback.dir/feedback/aggregator.cc.o.d"
  "CMakeFiles/alex_feedback.dir/feedback/oracle.cc.o"
  "CMakeFiles/alex_feedback.dir/feedback/oracle.cc.o.d"
  "libalex_feedback.a"
  "libalex_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
