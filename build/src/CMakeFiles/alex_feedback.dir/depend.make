# Empty dependencies file for alex_feedback.
# This may be replaced when dependencies are built.
