file(REMOVE_RECURSE
  "libalex_datagen.a"
)
