file(REMOVE_RECURSE
  "CMakeFiles/alex_datagen.dir/datagen/profiles.cc.o"
  "CMakeFiles/alex_datagen.dir/datagen/profiles.cc.o.d"
  "CMakeFiles/alex_datagen.dir/datagen/world.cc.o"
  "CMakeFiles/alex_datagen.dir/datagen/world.cc.o.d"
  "libalex_datagen.a"
  "libalex_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
