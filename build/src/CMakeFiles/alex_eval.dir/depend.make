# Empty dependencies file for alex_eval.
# This may be replaced when dependencies are built.
