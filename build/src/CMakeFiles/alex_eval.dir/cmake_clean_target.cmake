file(REMOVE_RECURSE
  "libalex_eval.a"
)
