
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/alex_eval.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/alex_eval.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/alex_eval.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/alex_eval.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/query_workload.cc" "src/CMakeFiles/alex_eval.dir/eval/query_workload.cc.o" "gcc" "src/CMakeFiles/alex_eval.dir/eval/query_workload.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/alex_eval.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/alex_eval.dir/eval/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
