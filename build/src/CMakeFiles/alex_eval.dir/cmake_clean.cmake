file(REMOVE_RECURSE
  "CMakeFiles/alex_eval.dir/eval/experiment.cc.o"
  "CMakeFiles/alex_eval.dir/eval/experiment.cc.o.d"
  "CMakeFiles/alex_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/alex_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/alex_eval.dir/eval/query_workload.cc.o"
  "CMakeFiles/alex_eval.dir/eval/query_workload.cc.o.d"
  "CMakeFiles/alex_eval.dir/eval/report.cc.o"
  "CMakeFiles/alex_eval.dir/eval/report.cc.o.d"
  "libalex_eval.a"
  "libalex_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
