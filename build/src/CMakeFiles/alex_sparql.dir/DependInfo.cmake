
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparql/algebra.cc" "src/CMakeFiles/alex_sparql.dir/sparql/algebra.cc.o" "gcc" "src/CMakeFiles/alex_sparql.dir/sparql/algebra.cc.o.d"
  "/root/repo/src/sparql/executor.cc" "src/CMakeFiles/alex_sparql.dir/sparql/executor.cc.o" "gcc" "src/CMakeFiles/alex_sparql.dir/sparql/executor.cc.o.d"
  "/root/repo/src/sparql/parser.cc" "src/CMakeFiles/alex_sparql.dir/sparql/parser.cc.o" "gcc" "src/CMakeFiles/alex_sparql.dir/sparql/parser.cc.o.d"
  "/root/repo/src/sparql/results_io.cc" "src/CMakeFiles/alex_sparql.dir/sparql/results_io.cc.o" "gcc" "src/CMakeFiles/alex_sparql.dir/sparql/results_io.cc.o.d"
  "/root/repo/src/sparql/tokenizer.cc" "src/CMakeFiles/alex_sparql.dir/sparql/tokenizer.cc.o" "gcc" "src/CMakeFiles/alex_sparql.dir/sparql/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
