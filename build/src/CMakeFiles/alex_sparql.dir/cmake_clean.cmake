file(REMOVE_RECURSE
  "CMakeFiles/alex_sparql.dir/sparql/algebra.cc.o"
  "CMakeFiles/alex_sparql.dir/sparql/algebra.cc.o.d"
  "CMakeFiles/alex_sparql.dir/sparql/executor.cc.o"
  "CMakeFiles/alex_sparql.dir/sparql/executor.cc.o.d"
  "CMakeFiles/alex_sparql.dir/sparql/parser.cc.o"
  "CMakeFiles/alex_sparql.dir/sparql/parser.cc.o.d"
  "CMakeFiles/alex_sparql.dir/sparql/results_io.cc.o"
  "CMakeFiles/alex_sparql.dir/sparql/results_io.cc.o.d"
  "CMakeFiles/alex_sparql.dir/sparql/tokenizer.cc.o"
  "CMakeFiles/alex_sparql.dir/sparql/tokenizer.cc.o.d"
  "libalex_sparql.a"
  "libalex_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
