file(REMOVE_RECURSE
  "CMakeFiles/similarity_tests.dir/similarity/string_metrics_test.cc.o"
  "CMakeFiles/similarity_tests.dir/similarity/string_metrics_test.cc.o.d"
  "CMakeFiles/similarity_tests.dir/similarity/value_similarity_test.cc.o"
  "CMakeFiles/similarity_tests.dir/similarity/value_similarity_test.cc.o.d"
  "similarity_tests"
  "similarity_tests.pdb"
  "similarity_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
