# Empty compiler generated dependencies file for similarity_tests.
# This may be replaced when dependencies are built.
