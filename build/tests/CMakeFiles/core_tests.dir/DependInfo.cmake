
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/alex_engine_test.cc" "tests/CMakeFiles/core_tests.dir/core/alex_engine_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/alex_engine_test.cc.o.d"
  "/root/repo/tests/core/candidate_set_test.cc" "tests/CMakeFiles/core_tests.dir/core/candidate_set_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/candidate_set_test.cc.o.d"
  "/root/repo/tests/core/engine_invariants_test.cc" "tests/CMakeFiles/core_tests.dir/core/engine_invariants_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/engine_invariants_test.cc.o.d"
  "/root/repo/tests/core/engine_state_test.cc" "tests/CMakeFiles/core_tests.dir/core/engine_state_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/engine_state_test.cc.o.d"
  "/root/repo/tests/core/feature_set_test.cc" "tests/CMakeFiles/core_tests.dir/core/feature_set_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/feature_set_test.cc.o.d"
  "/root/repo/tests/core/feature_space_test.cc" "tests/CMakeFiles/core_tests.dir/core/feature_space_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/feature_space_test.cc.o.d"
  "/root/repo/tests/core/mc_learner_test.cc" "tests/CMakeFiles/core_tests.dir/core/mc_learner_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/mc_learner_test.cc.o.d"
  "/root/repo/tests/core/partitioner_test.cc" "tests/CMakeFiles/core_tests.dir/core/partitioner_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/partitioner_test.cc.o.d"
  "/root/repo/tests/core/policy_test.cc" "tests/CMakeFiles/core_tests.dir/core/policy_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/policy_test.cc.o.d"
  "/root/repo/tests/core/rl_soundness_test.cc" "tests/CMakeFiles/core_tests.dir/core/rl_soundness_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rl_soundness_test.cc.o.d"
  "/root/repo/tests/core/rollback_log_test.cc" "tests/CMakeFiles/core_tests.dir/core/rollback_log_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rollback_log_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alex_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
