file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/alex_engine_test.cc.o"
  "CMakeFiles/core_tests.dir/core/alex_engine_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/candidate_set_test.cc.o"
  "CMakeFiles/core_tests.dir/core/candidate_set_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/engine_invariants_test.cc.o"
  "CMakeFiles/core_tests.dir/core/engine_invariants_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/engine_state_test.cc.o"
  "CMakeFiles/core_tests.dir/core/engine_state_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/feature_set_test.cc.o"
  "CMakeFiles/core_tests.dir/core/feature_set_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/feature_space_test.cc.o"
  "CMakeFiles/core_tests.dir/core/feature_space_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/mc_learner_test.cc.o"
  "CMakeFiles/core_tests.dir/core/mc_learner_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/partitioner_test.cc.o"
  "CMakeFiles/core_tests.dir/core/partitioner_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/policy_test.cc.o"
  "CMakeFiles/core_tests.dir/core/policy_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/rl_soundness_test.cc.o"
  "CMakeFiles/core_tests.dir/core/rl_soundness_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/rollback_log_test.cc.o"
  "CMakeFiles/core_tests.dir/core/rollback_log_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
