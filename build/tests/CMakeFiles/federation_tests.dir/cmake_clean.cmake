file(REMOVE_RECURSE
  "CMakeFiles/federation_tests.dir/federation/federated_engine_test.cc.o"
  "CMakeFiles/federation_tests.dir/federation/federated_engine_test.cc.o.d"
  "CMakeFiles/federation_tests.dir/federation/link_set_test.cc.o"
  "CMakeFiles/federation_tests.dir/federation/link_set_test.cc.o.d"
  "CMakeFiles/federation_tests.dir/federation/multi_source_test.cc.o"
  "CMakeFiles/federation_tests.dir/federation/multi_source_test.cc.o.d"
  "federation_tests"
  "federation_tests.pdb"
  "federation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
