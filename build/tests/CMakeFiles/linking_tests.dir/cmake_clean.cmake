file(REMOVE_RECURSE
  "CMakeFiles/linking_tests.dir/linking/link_io_test.cc.o"
  "CMakeFiles/linking_tests.dir/linking/link_io_test.cc.o.d"
  "CMakeFiles/linking_tests.dir/linking/paris_test.cc.o"
  "CMakeFiles/linking_tests.dir/linking/paris_test.cc.o.d"
  "CMakeFiles/linking_tests.dir/linking/rule_matcher_test.cc.o"
  "CMakeFiles/linking_tests.dir/linking/rule_matcher_test.cc.o.d"
  "linking_tests"
  "linking_tests.pdb"
  "linking_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linking_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
