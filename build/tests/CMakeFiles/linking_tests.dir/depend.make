# Empty dependencies file for linking_tests.
# This may be replaced when dependencies are built.
