file(REMOVE_RECURSE
  "CMakeFiles/rdf_tests.dir/rdf/dataset_stats_test.cc.o"
  "CMakeFiles/rdf_tests.dir/rdf/dataset_stats_test.cc.o.d"
  "CMakeFiles/rdf_tests.dir/rdf/dictionary_test.cc.o"
  "CMakeFiles/rdf_tests.dir/rdf/dictionary_test.cc.o.d"
  "CMakeFiles/rdf_tests.dir/rdf/entity_view_test.cc.o"
  "CMakeFiles/rdf_tests.dir/rdf/entity_view_test.cc.o.d"
  "CMakeFiles/rdf_tests.dir/rdf/ntriples_test.cc.o"
  "CMakeFiles/rdf_tests.dir/rdf/ntriples_test.cc.o.d"
  "CMakeFiles/rdf_tests.dir/rdf/snapshot_test.cc.o"
  "CMakeFiles/rdf_tests.dir/rdf/snapshot_test.cc.o.d"
  "CMakeFiles/rdf_tests.dir/rdf/term_test.cc.o"
  "CMakeFiles/rdf_tests.dir/rdf/term_test.cc.o.d"
  "CMakeFiles/rdf_tests.dir/rdf/triple_store_test.cc.o"
  "CMakeFiles/rdf_tests.dir/rdf/triple_store_test.cc.o.d"
  "CMakeFiles/rdf_tests.dir/rdf/turtle_test.cc.o"
  "CMakeFiles/rdf_tests.dir/rdf/turtle_test.cc.o.d"
  "rdf_tests"
  "rdf_tests.pdb"
  "rdf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
