file(REMOVE_RECURSE
  "CMakeFiles/sparql_tests.dir/sparql/aggregate_test.cc.o"
  "CMakeFiles/sparql_tests.dir/sparql/aggregate_test.cc.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/algebra_test.cc.o"
  "CMakeFiles/sparql_tests.dir/sparql/algebra_test.cc.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/executor_test.cc.o"
  "CMakeFiles/sparql_tests.dir/sparql/executor_test.cc.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/extended_test.cc.o"
  "CMakeFiles/sparql_tests.dir/sparql/extended_test.cc.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/parser_test.cc.o"
  "CMakeFiles/sparql_tests.dir/sparql/parser_test.cc.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/results_io_test.cc.o"
  "CMakeFiles/sparql_tests.dir/sparql/results_io_test.cc.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/tokenizer_test.cc.o"
  "CMakeFiles/sparql_tests.dir/sparql/tokenizer_test.cc.o.d"
  "sparql_tests"
  "sparql_tests.pdb"
  "sparql_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
