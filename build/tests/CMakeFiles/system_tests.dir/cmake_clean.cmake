file(REMOVE_RECURSE
  "CMakeFiles/system_tests.dir/datagen/world_test.cc.o"
  "CMakeFiles/system_tests.dir/datagen/world_test.cc.o.d"
  "CMakeFiles/system_tests.dir/eval/experiment_test.cc.o"
  "CMakeFiles/system_tests.dir/eval/experiment_test.cc.o.d"
  "CMakeFiles/system_tests.dir/eval/metrics_test.cc.o"
  "CMakeFiles/system_tests.dir/eval/metrics_test.cc.o.d"
  "CMakeFiles/system_tests.dir/eval/query_workload_test.cc.o"
  "CMakeFiles/system_tests.dir/eval/query_workload_test.cc.o.d"
  "CMakeFiles/system_tests.dir/eval/report_csv_test.cc.o"
  "CMakeFiles/system_tests.dir/eval/report_csv_test.cc.o.d"
  "CMakeFiles/system_tests.dir/feedback/aggregator_test.cc.o"
  "CMakeFiles/system_tests.dir/feedback/aggregator_test.cc.o.d"
  "CMakeFiles/system_tests.dir/feedback/oracle_test.cc.o"
  "CMakeFiles/system_tests.dir/feedback/oracle_test.cc.o.d"
  "CMakeFiles/system_tests.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/system_tests.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/system_tests.dir/integration/fuzz_robustness_test.cc.o"
  "CMakeFiles/system_tests.dir/integration/fuzz_robustness_test.cc.o.d"
  "CMakeFiles/system_tests.dir/integration/profile_regimes_test.cc.o"
  "CMakeFiles/system_tests.dir/integration/profile_regimes_test.cc.o.d"
  "system_tests"
  "system_tests.pdb"
  "system_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
