
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/datagen/world_test.cc" "tests/CMakeFiles/system_tests.dir/datagen/world_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/datagen/world_test.cc.o.d"
  "/root/repo/tests/eval/experiment_test.cc" "tests/CMakeFiles/system_tests.dir/eval/experiment_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/eval/experiment_test.cc.o.d"
  "/root/repo/tests/eval/metrics_test.cc" "tests/CMakeFiles/system_tests.dir/eval/metrics_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/eval/metrics_test.cc.o.d"
  "/root/repo/tests/eval/query_workload_test.cc" "tests/CMakeFiles/system_tests.dir/eval/query_workload_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/eval/query_workload_test.cc.o.d"
  "/root/repo/tests/eval/report_csv_test.cc" "tests/CMakeFiles/system_tests.dir/eval/report_csv_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/eval/report_csv_test.cc.o.d"
  "/root/repo/tests/feedback/aggregator_test.cc" "tests/CMakeFiles/system_tests.dir/feedback/aggregator_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/feedback/aggregator_test.cc.o.d"
  "/root/repo/tests/feedback/oracle_test.cc" "tests/CMakeFiles/system_tests.dir/feedback/oracle_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/feedback/oracle_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/system_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/fuzz_robustness_test.cc" "tests/CMakeFiles/system_tests.dir/integration/fuzz_robustness_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/integration/fuzz_robustness_test.cc.o.d"
  "/root/repo/tests/integration/profile_regimes_test.cc" "tests/CMakeFiles/system_tests.dir/integration/profile_regimes_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/integration/profile_regimes_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alex_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
