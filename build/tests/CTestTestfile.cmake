# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/rdf_tests[1]_include.cmake")
include("/root/repo/build/tests/similarity_tests[1]_include.cmake")
include("/root/repo/build/tests/sparql_tests[1]_include.cmake")
include("/root/repo/build/tests/federation_tests[1]_include.cmake")
include("/root/repo/build/tests/linking_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/system_tests[1]_include.cmake")
include("/root/repo/build/tests/tools_tests[1]_include.cmake")
