file(REMOVE_RECURSE
  "CMakeFiles/nba_domain.dir/nba_domain.cpp.o"
  "CMakeFiles/nba_domain.dir/nba_domain.cpp.o.d"
  "nba_domain"
  "nba_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nba_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
