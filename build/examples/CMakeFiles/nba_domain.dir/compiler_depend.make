# Empty compiler generated dependencies file for nba_domain.
# This may be replaced when dependencies are built.
