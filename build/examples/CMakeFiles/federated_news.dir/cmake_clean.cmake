file(REMOVE_RECURSE
  "CMakeFiles/federated_news.dir/federated_news.cpp.o"
  "CMakeFiles/federated_news.dir/federated_news.cpp.o.d"
  "federated_news"
  "federated_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
