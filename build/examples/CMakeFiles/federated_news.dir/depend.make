# Empty dependencies file for federated_news.
# This may be replaced when dependencies are built.
