file(REMOVE_RECURSE
  "CMakeFiles/robust_feedback.dir/robust_feedback.cpp.o"
  "CMakeFiles/robust_feedback.dir/robust_feedback.cpp.o.d"
  "robust_feedback"
  "robust_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
