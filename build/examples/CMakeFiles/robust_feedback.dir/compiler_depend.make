# Empty compiler generated dependencies file for robust_feedback.
# This may be replaced when dependencies are built.
